//! Elastic data-parallel SGD across simulated chips with bucketized,
//! overlap-aware gradient collectives.
//!
//! The global batch is cut into `M` microbatches; each of `C` chips owns
//! a contiguous run of them ([`super::collective::shard_microbatches`] —
//! ragged counts allowed, the first `M mod C` chips take one extra).
//! Per-microbatch gradients meet in a bucketized allreduce: the flat
//! gradient is cut into buckets, each bucket launches its own
//! [`sw_perfmodel::CollectiveSchedule`] as soon as the last backward
//! sweep has produced it, and all buckets contend for ports and uplinks
//! on the topology-aware [`sw_perfmodel::NetworkModel`]. Because every
//! microbatch's gradient enters the sum at its *global index* — not in
//! arrival, ring, or bucket order — the reduced gradient, and therefore
//! every parameter after every step, is bit-identical at any chip count,
//! bucket size, or thread count.
//!
//! **Elasticity:** a [`sw_sim::FaultPlan`] with a chip-fail rate may
//! kill one chip mid-step. Its entire assignment reshards round-robin
//! onto the survivors ([`super::collective::reshard_on_failure`]), the
//! collective runs over the survivor set, and the step completes with
//! zero lost microbatches and parameters identical to a healthy step —
//! the failure moves only simulated time. The chip stays down for later
//! steps until [`DataParallelTrainer::restore_chip`].
//!
//! Time is modeled, not measured: compute ends per chip, per-bucket
//! readiness (`ready = end − backward_fraction·mb_us·lo/total`), and the
//! executed collective finish together give the step's wall time; the
//! `collective_overlap_permille` gauge reports how much wire time hid
//! under backward compute.

use super::allreduce::{load_gradients, take_gradients, AllreduceReport};
use super::collective::{
    reduce_bucketized, reshard_on_failure, run_collective, shard_microbatches, BucketPlan,
};
use crate::error::SwdnnError;
use crate::network::Sequential;
use crate::optim::Optimizer;
use serde_json::Value;
use sw_obs::{chip_tag, link_tag, Recorder, TagCounters};
use sw_perfmodel::{InterconnectSpec, LinkOccupancy, NetworkModel, Topology};
use sw_sim::FaultPlan;
use sw_tensor::{Layout, Tensor4};

/// Data-parallel training configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Simulated chips sharing the step.
    pub chips: usize,
    /// Global microbatches per step (`M`); must be ≥ `chips` (ragged
    /// distribution handles any `M mod C`). The microbatch is the
    /// reduction grain: gradients are summed in microbatch-index order
    /// at any chip count.
    pub microbatches: usize,
    pub interconnect: InterconnectSpec,
    /// Switch-group structure the collectives execute against.
    pub topology: Topology,
    /// Cut the flat gradient into buckets of this many parameters
    /// (`None` → one monolithic bucket, the PR 7 behavior).
    pub bucket_params: Option<usize>,
    /// Launch each bucket at its modeled backward-readiness instead of
    /// holding everything until compute ends.
    pub overlap: bool,
    /// Fraction of a microbatch's compute that is backward — the window
    /// over which buckets become ready, tail of the gradient first.
    pub backward_fraction: f64,
    /// Chip-grain fault injection; a positive
    /// [`FaultPlan::chip_fail_rate`] lets chips die mid-step.
    pub fault: FaultPlan,
    /// Modeled compute time one chip spends on one microbatch's
    /// forward+backward, µs of simulated time.
    pub compute_us_per_microbatch: u64,
    /// Record per-chip compute spans and per-bucket comm spans.
    pub trace: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            chips: 1,
            microbatches: 8,
            interconnect: InterconnectSpec::sw_cluster(),
            topology: Topology::flat(),
            bucket_params: None,
            overlap: true,
            backward_fraction: 0.5,
            fault: FaultPlan::none(0),
            compute_us_per_microbatch: 1_000,
            trace: false,
        }
    }
}

/// The step's gradient-communication summary (the bucketized view the
/// legacy [`AllreduceReport`] aggregates away).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CollectiveSummary {
    /// Buckets the gradient was cut into.
    pub buckets: usize,
    /// Σ per-bucket wire time, µs.
    pub comm_us: f64,
    /// Wire time hidden under backward compute, µs.
    pub hidden_us: f64,
    /// `1000 · hidden / comm` — the overlap gauge.
    pub overlap_permille: u64,
}

/// One training step's outcome and modeled cost.
#[derive(Clone, Copy, Debug)]
pub struct StepReport {
    /// Mean loss over the microbatches (before the update).
    pub loss: f64,
    /// Samples in the global batch.
    pub samples: usize,
    /// Modeled compute critical path, µs (slowest chip's end − start).
    pub compute_us: f64,
    /// Monolithic-equivalent view of the collective: `time_us` is the
    /// wire time *not* hidden under compute (what the step waited on).
    pub allreduce: AllreduceReport,
    /// Bucket-level communication detail.
    pub collective: CollectiveSummary,
    /// Chip that died this step, if any.
    pub failed_chip: Option<usize>,
    /// Microbatches recomputed on survivors after the failure.
    pub resharded_microbatches: usize,
    /// Full step wall time on the simulated cluster, µs.
    pub step_us: f64,
}

impl StepReport {
    /// Simulated training throughput of this step.
    pub fn samples_per_sec(&self) -> f64 {
        self.samples as f64 / (self.step_us / 1e6)
    }
}

/// Data-parallel SGD driver over one master [`Sequential`].
///
/// The network must be built for the *microbatch* size (its conv layers
/// carry a fixed batch); [`DataParallelTrainer::step`] takes the global
/// batch and slices it. One master copy stands in for all replicas —
/// since replicas start identical and apply the identical reduced
/// gradient each step, they stay identical, so simulating one of them
/// *is* simulating all of them. That is also why elasticity cannot move
/// numerics: a survivor recomputing a victim's microbatch feeds the same
/// gradient into the same slot of the same fixed-order sum.
pub struct DataParallelTrainer {
    cfg: TrainConfig,
    net: Sequential,
    opt: Optimizer,
    /// Simulated cluster clock, µs.
    clock_us: f64,
    steps: u64,
    /// `down[c]` — chip `c` died in an earlier step and has not been
    /// restored.
    down: Vec<bool>,
    recorder: Recorder,
    /// Per-chip / per-link counters (`chip/N/microbatches`,
    /// `link/tx-N/bytes`, `link/uplink-G-K/busy_us`, …).
    pub tags: TagCounters,
}

impl DataParallelTrainer {
    pub fn new(net: Sequential, opt: Optimizer, cfg: TrainConfig) -> Result<Self, SwdnnError> {
        if cfg.chips == 0 || cfg.microbatches < cfg.chips {
            return Err(SwdnnError::InsufficientMicrobatches {
                microbatches: cfg.microbatches,
                chips: cfg.chips,
            });
        }
        Ok(Self {
            recorder: if cfg.trace {
                Recorder::enabled()
            } else {
                Recorder::disabled()
            },
            down: vec![false; cfg.chips],
            cfg,
            net,
            opt,
            clock_us: 0.0,
            steps: 0,
            tags: TagCounters::new(),
        })
    }

    pub fn config(&self) -> TrainConfig {
        self.cfg
    }

    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Simulated time spent so far, µs.
    pub fn now_us(&self) -> f64 {
        self.clock_us
    }

    pub fn network(&self) -> &Sequential {
        &self.net
    }

    pub fn network_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// Chips currently able to take work.
    pub fn active_chips(&self) -> Vec<usize> {
        (0..self.cfg.chips).filter(|&c| !self.down[c]).collect()
    }

    /// Bring a failed chip back for the next step.
    pub fn restore_chip(&mut self, chip: usize) {
        if chip < self.down.len() {
            self.down[chip] = false;
        }
    }

    /// Every trainable parameter, flattened in the stable
    /// `visit_params` walk order — the bit-identity tests' comparand.
    pub fn parameters(&mut self) -> Vec<f64> {
        let mut flat = Vec::new();
        for layer in &mut self.net.layers {
            layer.visit_params(&mut |w, _| flat.extend_from_slice(w));
        }
        flat
    }

    /// One data-parallel step over a global batch whose leading
    /// dimension is `microbatches × microbatch_size`. Returns the mean
    /// loss and the step's modeled cluster cost.
    pub fn step(
        &mut self,
        input: &Tensor4<f64>,
        labels: &[usize],
    ) -> Result<StepReport, SwdnnError> {
        let b = input.shape().d0;
        let m = self.cfg.microbatches;
        if b == 0 || !b.is_multiple_of(m) || labels.len() != b {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("batch divisible by {m} microbatches with one label each"),
                got: format!("batch={b}, labels={}", labels.len()),
            });
        }
        let active = self.active_chips();
        if active.is_empty() {
            return Err(SwdnnError::ClusterUnavailable {
                chips: self.cfg.chips,
            });
        }
        let shard = shard_microbatches(m, active.len())?;

        // ----- numerics: independent of chips, buckets, and failures.
        // The master net computes every microbatch in global index
        // order; bucketized fixed-order reduction then matches the
        // monolithic reduce bit for bit.
        let mb_rows = b / m;
        let mut shard_grads = Vec::with_capacity(m);
        let mut loss_sum = 0.0;
        for i in 0..m {
            let x = slice_batch(input, i * mb_rows, mb_rows);
            let y = &labels[i * mb_rows..(i + 1) * mb_rows];
            let logits = self.net.forward(&x)?;
            loss_sum += self.net.loss.forward(&logits, y)?;
            let mut grad = self.net.loss.backward(y)?;
            for layer in self.net.layers.iter_mut().rev() {
                grad = layer.backward(&grad)?;
            }
            shard_grads.push(take_gradients(&mut self.net.layers));
        }
        let total_params = shard_grads.first().map(|g| g.len()).unwrap_or(0);
        let plan = match self.cfg.bucket_params {
            Some(bp) => BucketPlan::fixed_size(total_params, bp),
            None => BucketPlan::single(total_params),
        };
        let mut reduced = reduce_bucketized(&shard_grads, &plan);
        let scale = 1.0 / m as f64;
        for g in &mut reduced {
            *g *= scale;
        }
        load_gradients(&mut self.net.layers, &reduced);
        self.opt.step(&mut self.net.layers);

        // ----- time: per-chip compute ends, optional mid-step failure.
        let mb_us = self.cfg.compute_us_per_microbatch as f64;
        let mut own_end: Vec<f64> = shard
            .iter()
            .map(|r| self.clock_us + r.len() as f64 * mb_us)
            .collect();
        let mut extra_counts = vec![0usize; active.len()];
        let mut extra_starts = vec![0.0f64; active.len()];
        let mut failed_chip = None;
        let mut resharded = 0usize;
        if active.len() > 1 {
            if let Some(v) = active
                .iter()
                .position(|&chip| self.cfg.fault.chip_fails(chip, self.steps))
            {
                let victim = active[v];
                let n_v = shard[v].len();
                let done = ((self.cfg.fault.chip_fail_progress(victim, self.steps) * n_v as f64)
                    .floor() as usize)
                    .min(n_v);
                let t_fail = self.clock_us + done as f64 * mb_us;
                // A dead chip's partial sums die with it: the whole
                // assignment reshards, detection costs one link latency.
                let detect_us = self.cfg.interconnect.link_latency_us;
                let extra = reshard_on_failure(&shard, v);
                for (p, ex) in extra.iter().enumerate() {
                    if ex.is_empty() {
                        continue;
                    }
                    let start = own_end[p].max(t_fail + detect_us);
                    extra_starts[p] = start;
                    extra_counts[p] = ex.len();
                    own_end[p] = start + ex.len() as f64 * mb_us;
                }
                own_end[v] = t_fail;
                failed_chip = Some(victim);
                resharded = n_v;
                self.down[victim] = true;
                self.tags.add(&chip_tag(victim, "failures"), 1);
                self.tags
                    .add(&chip_tag(victim, "microbatches"), done as u64);
            }
        }
        let members: Vec<usize> = active
            .iter()
            .enumerate()
            .filter(|&(p, _)| failed_chip != Some(active[p]))
            .map(|(_, &chip)| chip)
            .collect();
        let compute_end = active
            .iter()
            .enumerate()
            .filter(|&(_, &chip)| failed_chip != Some(chip))
            .map(|(p, _)| own_end[p])
            .fold(self.clock_us, f64::max);

        // ----- the collective: per-bucket readiness, shared occupancy.
        let bf = self.cfg.backward_fraction.clamp(0.0, 1.0);
        let ready: Vec<f64> = plan
            .buckets
            .iter()
            .map(|r| {
                if self.cfg.overlap && total_params > 0 {
                    compute_end - bf * mb_us * (r.start as f64 / total_params as f64)
                } else {
                    compute_end
                }
            })
            .collect();
        let model = NetworkModel::new(self.cfg.interconnect, self.cfg.topology);
        let mut occ = LinkOccupancy::new();
        let creport = run_collective(&model, &mut occ, &members, &plan, &ready, compute_end);

        // ----- observability: spans, chip counters, link counters.
        for (p, &chip) in active.iter().enumerate() {
            let n = shard[p].len() as u64;
            if failed_chip == Some(chip) {
                self.recorder.span_cat(
                    "compute-failed",
                    "train",
                    chip as u64,
                    0,
                    self.clock_us,
                    own_end[p] - self.clock_us,
                    vec![("lost_microbatches".into(), Value::from(n))],
                );
                continue;
            }
            self.tags.add(&chip_tag(chip, "microbatches"), n);
            self.recorder.span_cat(
                "compute",
                "train",
                chip as u64,
                0,
                self.clock_us,
                shard[p].len() as f64 * mb_us,
                vec![("microbatches".into(), Value::from(n))],
            );
            if extra_counts[p] > 0 {
                self.tags
                    .add(&chip_tag(chip, "microbatches"), extra_counts[p] as u64);
                self.tags
                    .add(&chip_tag(chip, "resharded_in"), extra_counts[p] as u64);
                self.recorder.span_cat(
                    "compute-resharded",
                    "train",
                    chip as u64,
                    0,
                    extra_starts[p],
                    extra_counts[p] as f64 * mb_us,
                    vec![("microbatches".into(), Value::from(extra_counts[p] as u64))],
                );
            }
        }
        for span in &creport.spans {
            for &chip in &members {
                self.recorder.span_cat(
                    &format!("bucket-{}", span.bucket),
                    "comm",
                    chip as u64,
                    1,
                    span.start_us,
                    span.finish_us - span.start_us,
                    vec![
                        ("kind".into(), Value::from(span.kind.name())),
                        ("bytes".into(), Value::from(span.bytes)),
                        ("ready_us".into(), Value::from(span.ready_us)),
                    ],
                );
            }
        }
        for (name, usage) in occ.links() {
            self.tags.add(&link_tag(name, "bytes"), usage.bytes);
            self.tags
                .add(&link_tag(name, "busy_us"), usage.busy_us.round() as u64);
        }

        let compute_us = compute_end - self.clock_us;
        let step_end = compute_end.max(creport.finish_us);
        let step_us = step_end - self.clock_us;
        let allreduce = AllreduceReport {
            kind: creport.kind,
            tensor_bytes: creport.tensor_bytes,
            time_us: (creport.finish_us - compute_end).max(0.0),
            wire_bytes_per_chip: creport.wire_bytes_per_chip,
        };
        let collective = CollectiveSummary {
            buckets: creport.buckets,
            comm_us: creport.comm_us,
            hidden_us: creport.hidden_us,
            overlap_permille: creport.overlap_permille,
        };
        self.clock_us = step_end;
        self.steps += 1;
        Ok(StepReport {
            loss: loss_sum / m as f64,
            samples: b,
            compute_us,
            allreduce,
            collective,
            failed_chip,
            resharded_microbatches: resharded,
            step_us,
        })
    }

    /// Take the recorded cross-chip trace (empty when tracing is off).
    pub fn take_trace(&mut self) -> sw_obs::ChromeTrace {
        self.recorder.take()
    }
}

/// Copy `count` batch rows starting at `start` into a fresh tensor.
fn slice_batch(x: &Tensor4<f64>, start: usize, count: usize) -> Tensor4<f64> {
    let s = x.shape();
    Tensor4::from_fn(
        sw_tensor::Shape4::new(count, s.d1, s.d2, s.d3),
        Layout::Nchw,
        |b, c, h, w| x.get(start + b, c, h, w),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Engine;
    use crate::zoo::lenet_12;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sw_tensor::Shape4;

    fn task(batch: usize, seed: u64) -> (Tensor4<f64>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor4::zeros(Shape4::new(batch, 1, 12, 12), Layout::Nchw);
        let mut y = Vec::new();
        for b in 0..batch {
            let class = rng.gen_range(0..2usize);
            for r in 0..12 {
                for c in 0..12 {
                    let v = if (class == 0) == (c < 6) { 1.0 } else { 0.1 };
                    x.set(b, 0, r, c, v + rng.gen_range(-0.05..0.05));
                }
            }
            y.push(class);
        }
        (x, y)
    }

    fn trainer_cfg(cfg: TrainConfig) -> DataParallelTrainer {
        let mb = 32 / cfg.microbatches;
        let net = lenet_12(mb, 1, 2, Engine::Host, 42).unwrap();
        DataParallelTrainer::new(net, Optimizer::sgd(0.1), cfg).unwrap()
    }

    fn trainer(chips: usize, microbatches: usize) -> DataParallelTrainer {
        trainer_cfg(TrainConfig {
            chips,
            microbatches,
            ..TrainConfig::default()
        })
    }

    #[test]
    fn ragged_chip_counts_are_accepted_and_bit_identical() {
        let (x, y) = task(32, 5);
        let mut even = trainer(1, 8);
        let mut ragged = trainer(3, 8); // shards 3,3,2
        for _ in 0..3 {
            even.step(&x, &y).unwrap();
            ragged.step(&x, &y).unwrap();
        }
        assert_eq!(even.parameters(), ragged.parameters());
    }

    #[test]
    fn rejects_fewer_microbatches_than_chips() {
        let net = lenet_12(4, 1, 2, Engine::Host, 1).unwrap();
        let err = DataParallelTrainer::new(
            net,
            Optimizer::sgd(0.1),
            TrainConfig {
                chips: 8,
                microbatches: 4,
                ..TrainConfig::default()
            },
        );
        assert!(matches!(
            err.err().expect("8 chips cannot run on 4 microbatches"),
            SwdnnError::InsufficientMicrobatches {
                microbatches: 4,
                chips: 8
            }
        ));
    }

    #[test]
    fn gradients_are_bit_identical_across_chip_counts() {
        let (x, y) = task(32, 5);
        let mut reference: Option<Vec<f64>> = None;
        for chips in [1usize, 2, 4, 8] {
            let mut t = trainer(chips, 8);
            for _ in 0..3 {
                t.step(&x, &y).unwrap();
            }
            let params = t.parameters();
            match &reference {
                None => reference = Some(params),
                Some(want) => assert_eq!(
                    &params, want,
                    "parameters diverged at {chips} chips — fixed-order reduction broken"
                ),
            }
        }
    }

    #[test]
    fn training_still_learns_under_data_parallelism() {
        let (x, y) = task(32, 6);
        let mut t = trainer(4, 8);
        let first = t.step(&x, &y).unwrap().loss;
        let mut last = first;
        for _ in 0..40 {
            last = t.step(&x, &y).unwrap().loss;
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn more_chips_cut_compute_time_but_pay_allreduce() {
        let (x, y) = task(32, 7);
        let mut one = trainer(1, 8);
        let mut eight = trainer(8, 8);
        let r1 = one.step(&x, &y).unwrap();
        let r8 = eight.step(&x, &y).unwrap();
        assert!((r1.compute_us - 8.0 * r8.compute_us).abs() < 1e-9);
        assert_eq!(r1.allreduce.time_us, 0.0, "single chip pays no wire time");
        assert!(r8.allreduce.time_us > 0.0);
        assert!(r8.step_us < r1.step_us, "scaling must still win overall");
    }

    #[test]
    fn bucketized_overlap_beats_serial_comm_and_keeps_numerics() {
        let (x, y) = task(32, 5);
        let overlap_cfg = TrainConfig {
            chips: 4,
            microbatches: 8,
            bucket_params: Some(100),
            overlap: true,
            ..TrainConfig::default()
        };
        let serial_cfg = TrainConfig {
            overlap: false,
            ..overlap_cfg
        };
        let mut mono = trainer(4, 8);
        let mut over = trainer_cfg(overlap_cfg);
        let mut serial = trainer_cfg(serial_cfg);
        let (mut ro, mut rs) = (None, None);
        for _ in 0..3 {
            mono.step(&x, &y).unwrap();
            ro = Some(over.step(&x, &y).unwrap());
            rs = Some(serial.step(&x, &y).unwrap());
        }
        let (ro, rs) = (ro.unwrap(), rs.unwrap());
        assert_eq!(over.parameters(), mono.parameters(), "buckets moved bits");
        assert_eq!(serial.parameters(), mono.parameters());
        assert!(ro.collective.buckets > 1);
        assert!(
            ro.step_us < rs.step_us,
            "overlap {} must beat serial {}",
            ro.step_us,
            rs.step_us
        );
        assert!(ro.collective.overlap_permille > 0);
        assert_eq!(rs.collective.overlap_permille, 0);
    }

    #[test]
    fn chip_failure_reshards_without_moving_parameters() {
        let (x, y) = task(32, 5);
        let mut healthy = trainer(4, 8);
        let mut faulty = trainer_cfg(TrainConfig {
            chips: 4,
            microbatches: 8,
            fault: FaultPlan::none(7).with_chip_fail_rate(1.0),
            ..TrainConfig::default()
        });
        let rh = healthy.step(&x, &y).unwrap();
        let rf = faulty.step(&x, &y).unwrap();
        // Rate 1.0 fails the first active chip; its 2 microbatches
        // recompute on survivors and the step costs more time.
        assert_eq!(rf.failed_chip, Some(0));
        assert_eq!(rf.resharded_microbatches, 2);
        assert!(rf.step_us > rh.step_us);
        assert_eq!(rf.loss, rh.loss);
        assert_eq!(healthy.parameters(), faulty.parameters());
        // The chip stays down: next step fails the next-lowest id.
        assert_eq!(faulty.active_chips(), vec![1, 2, 3]);
        let rf2 = faulty.step(&x, &y).unwrap();
        assert_eq!(rf2.failed_chip, Some(1));
        assert_eq!(healthy.step(&x, &y).unwrap().loss, rf2.loss);
        assert_eq!(healthy.parameters(), faulty.parameters());
        // Restore brings the chip back into the assignment.
        faulty.restore_chip(0);
        assert_eq!(faulty.active_chips(), vec![0, 2, 3]);
        // A lone survivor never self-fails: drain down to one chip.
        let rf3 = faulty.step(&x, &y).unwrap(); // fails 0 again
        assert_eq!(rf3.failed_chip, Some(0));
        let rf4 = faulty.step(&x, &y).unwrap(); // fails 2
        assert_eq!(rf4.failed_chip, Some(2));
        let rf5 = faulty.step(&x, &y).unwrap(); // 3 alone: no failure
        assert_eq!(rf5.failed_chip, None);
        assert_eq!(faulty.active_chips(), vec![3]);
    }

    #[test]
    fn counters_and_trace_cover_every_chip() {
        let (x, y) = task(32, 8);
        let net = lenet_12(4, 1, 2, Engine::Host, 42).unwrap();
        let mut t = DataParallelTrainer::new(
            net,
            Optimizer::sgd(0.1),
            TrainConfig {
                chips: 4,
                microbatches: 8,
                trace: true,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        t.step(&x, &y).unwrap();
        for chip in 0..4 {
            assert_eq!(t.tags.get(&chip_tag(chip, "microbatches")), 2);
            assert!(t.tags.get(&link_tag(&format!("tx-{chip}"), "bytes")) > 0);
            assert!(t.tags.get(&link_tag(&format!("rx-{chip}"), "bytes")) > 0);
        }
        let trace = t.take_trace();
        let pids: std::collections::BTreeSet<u64> = trace.events.iter().map(|e| e.pid).collect();
        assert_eq!(pids.len(), 4, "one track per chip");
        assert!(trace.category_dur_us("train") > 0.0);
        assert!(trace.category_dur_us("comm") > 0.0, "comm spans recorded");
    }

    #[test]
    fn step_rejects_mismatched_batches() {
        let (x, y) = task(30, 9); // 30 not divisible by 8
        let mut t = trainer(2, 8);
        assert!(t.step(&x, &y).is_err());
    }
}
