//! Data-parallel SGD across simulated chips.
//!
//! The global batch is cut into `M` microbatches; each of `C` chips owns
//! `M/C` of them, runs forward/backward, and the per-microbatch
//! gradients meet in an allreduce
//! ([`super::allreduce::reduce_fixed_order`] for the numbers,
//! [`sw_perfmodel::InterconnectSpec`] for the time). Because every
//! microbatch's gradient enters the sum at its *global index* — not in
//! arrival or ring order — the reduced gradient, and therefore every
//! parameter after every step, is bit-identical at any chip count.
//!
//! Time is modeled, not measured: a step costs `M/C` microbatch compute
//! times (data parallelism's compute speedup) plus the collective's
//! modeled time (its overhead). Weak-scaling efficiency — throughput
//! per chip at constant per-chip load — is then a deterministic number
//! the `cluster_bench` CI gate can hold at ≥80%.

use super::allreduce::{
    load_gradients, plan_allreduce, reduce_fixed_order, take_gradients, AllreduceReport,
};
use crate::error::SwdnnError;
use crate::network::Sequential;
use crate::optim::Optimizer;
use serde_json::Value;
use sw_obs::{chip_tag, link_tag, Recorder, TagCounters};
use sw_perfmodel::InterconnectSpec;
use sw_tensor::{Layout, Tensor4};

/// Data-parallel training configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Simulated chips sharing the step.
    pub chips: usize,
    /// Global microbatches per step (`M`); `chips` must divide it. The
    /// microbatch is the reduction grain: gradients are summed in
    /// microbatch-index order at any chip count.
    pub microbatches: usize,
    pub interconnect: InterconnectSpec,
    /// Modeled compute time one chip spends on one microbatch's
    /// forward+backward, µs of simulated time.
    pub compute_us_per_microbatch: u64,
    /// Record per-chip compute and allreduce spans.
    pub trace: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            chips: 1,
            microbatches: 8,
            interconnect: InterconnectSpec::sw_cluster(),
            compute_us_per_microbatch: 1_000,
            trace: false,
        }
    }
}

/// One training step's outcome and modeled cost.
#[derive(Clone, Copy, Debug)]
pub struct StepReport {
    /// Mean loss over the microbatches (before the update).
    pub loss: f64,
    /// Samples in the global batch.
    pub samples: usize,
    /// Per-chip compute time, µs (`M/C` microbatches).
    pub compute_us: f64,
    pub allreduce: AllreduceReport,
    /// Full step wall time on the simulated cluster, µs.
    pub step_us: f64,
}

impl StepReport {
    /// Simulated training throughput of this step.
    pub fn samples_per_sec(&self) -> f64 {
        self.samples as f64 / (self.step_us / 1e6)
    }
}

/// Data-parallel SGD driver over one master [`Sequential`].
///
/// The network must be built for the *microbatch* size (its conv layers
/// carry a fixed batch); [`DataParallelTrainer::step`] takes the global
/// batch and slices it. One master copy stands in for all replicas —
/// since replicas start identical and apply the identical reduced
/// gradient each step, they stay identical, so simulating one of them
/// *is* simulating all of them.
pub struct DataParallelTrainer {
    cfg: TrainConfig,
    net: Sequential,
    opt: Optimizer,
    /// Simulated cluster clock, µs.
    clock_us: f64,
    steps: u64,
    recorder: Recorder,
    /// Per-chip / per-link counters (`chip/N/microbatches`,
    /// `link/ring-N/bytes`).
    pub tags: TagCounters,
}

impl DataParallelTrainer {
    pub fn new(net: Sequential, opt: Optimizer, cfg: TrainConfig) -> Result<Self, SwdnnError> {
        if cfg.chips == 0 || cfg.microbatches == 0 || !cfg.microbatches.is_multiple_of(cfg.chips) {
            return Err(SwdnnError::ShapeMismatch {
                expected: "chips ≥ 1 dividing the microbatch count".into(),
                got: format!("chips={}, microbatches={}", cfg.chips, cfg.microbatches),
            });
        }
        Ok(Self {
            recorder: if cfg.trace {
                Recorder::enabled()
            } else {
                Recorder::disabled()
            },
            cfg,
            net,
            opt,
            clock_us: 0.0,
            steps: 0,
            tags: TagCounters::new(),
        })
    }

    pub fn config(&self) -> TrainConfig {
        self.cfg
    }

    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Simulated time spent so far, µs.
    pub fn now_us(&self) -> f64 {
        self.clock_us
    }

    pub fn network(&self) -> &Sequential {
        &self.net
    }

    pub fn network_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// Every trainable parameter, flattened in the stable
    /// `visit_params` walk order — the bit-identity tests' comparand.
    pub fn parameters(&mut self) -> Vec<f64> {
        let mut flat = Vec::new();
        for layer in &mut self.net.layers {
            layer.visit_params(&mut |w, _| flat.extend_from_slice(w));
        }
        flat
    }

    /// One data-parallel step over a global batch whose leading
    /// dimension is `microbatches × microbatch_size`. Returns the mean
    /// loss and the step's modeled cluster cost.
    pub fn step(
        &mut self,
        input: &Tensor4<f64>,
        labels: &[usize],
    ) -> Result<StepReport, SwdnnError> {
        let b = input.shape().d0;
        let m = self.cfg.microbatches;
        if b == 0 || !b.is_multiple_of(m) || labels.len() != b {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("batch divisible by {m} microbatches with one label each"),
                got: format!("batch={b}, labels={}", labels.len()),
            });
        }
        let mb = b / m;
        let mut shard_grads = Vec::with_capacity(m);
        let mut loss_sum = 0.0;
        for i in 0..m {
            let x = slice_batch(input, i * mb, mb);
            let y = &labels[i * mb..(i + 1) * mb];
            let logits = self.net.forward(&x)?;
            loss_sum += self.net.loss.forward(&logits, y)?;
            let mut grad = self.net.loss.backward(y)?;
            for layer in self.net.layers.iter_mut().rev() {
                grad = layer.backward(&grad)?;
            }
            shard_grads.push(take_gradients(&mut self.net.layers));
        }
        // The fixed-order reduction: microbatch index order, then one
        // deterministic 1/M scale — identical at any chip count.
        let mut reduced = reduce_fixed_order(&shard_grads);
        let scale = 1.0 / m as f64;
        for g in &mut reduced {
            *g *= scale;
        }
        let allreduce = plan_allreduce(&self.cfg.interconnect, reduced.len(), self.cfg.chips);
        load_gradients(&mut self.net.layers, &reduced);
        self.opt.step(&mut self.net.layers);

        let per_chip = (m / self.cfg.chips) as u64;
        let compute_us = (per_chip * self.cfg.compute_us_per_microbatch) as f64;
        let step_us = compute_us + allreduce.time_us;
        for chip in 0..self.cfg.chips {
            self.tags.add(&chip_tag(chip, "microbatches"), per_chip);
            self.tags.add(
                &link_tag(&format!("ring-{chip}"), "bytes"),
                allreduce.wire_bytes_per_chip,
            );
            self.recorder.span_cat(
                "compute",
                "train",
                chip as u64,
                0,
                self.clock_us,
                compute_us,
                vec![("microbatches".into(), Value::from(per_chip))],
            );
            self.recorder.span_cat(
                "allreduce",
                "train",
                chip as u64,
                0,
                self.clock_us + compute_us,
                allreduce.time_us,
                vec![
                    ("kind".into(), Value::from(allreduce.kind.name())),
                    ("bytes".into(), Value::from(allreduce.tensor_bytes)),
                    (
                        "wire_bytes".into(),
                        Value::from(allreduce.wire_bytes_per_chip),
                    ),
                ],
            );
        }
        self.clock_us += step_us;
        self.steps += 1;
        Ok(StepReport {
            loss: loss_sum / m as f64,
            samples: b,
            compute_us,
            allreduce,
            step_us,
        })
    }

    /// Take the recorded cross-chip trace (empty when tracing is off).
    pub fn take_trace(&mut self) -> sw_obs::ChromeTrace {
        self.recorder.take()
    }
}

/// Copy `count` batch rows starting at `start` into a fresh tensor.
fn slice_batch(x: &Tensor4<f64>, start: usize, count: usize) -> Tensor4<f64> {
    let s = x.shape();
    Tensor4::from_fn(
        sw_tensor::Shape4::new(count, s.d1, s.d2, s.d3),
        Layout::Nchw,
        |b, c, h, w| x.get(start + b, c, h, w),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Engine;
    use crate::zoo::lenet_12;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sw_tensor::Shape4;

    fn task(batch: usize, seed: u64) -> (Tensor4<f64>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor4::zeros(Shape4::new(batch, 1, 12, 12), Layout::Nchw);
        let mut y = Vec::new();
        for b in 0..batch {
            let class = rng.gen_range(0..2usize);
            for r in 0..12 {
                for c in 0..12 {
                    let v = if (class == 0) == (c < 6) { 1.0 } else { 0.1 };
                    x.set(b, 0, r, c, v + rng.gen_range(-0.05..0.05));
                }
            }
            y.push(class);
        }
        (x, y)
    }

    fn trainer(chips: usize, microbatches: usize) -> DataParallelTrainer {
        let mb = 32 / microbatches;
        let net = lenet_12(mb, 1, 2, Engine::Host, 42).unwrap();
        DataParallelTrainer::new(
            net,
            Optimizer::sgd(0.1),
            TrainConfig {
                chips,
                microbatches,
                ..TrainConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn rejects_chip_counts_that_do_not_divide() {
        let net = lenet_12(4, 1, 2, Engine::Host, 1).unwrap();
        let err = DataParallelTrainer::new(
            net,
            Optimizer::sgd(0.1),
            TrainConfig {
                chips: 3,
                microbatches: 8,
                ..TrainConfig::default()
            },
        );
        assert!(matches!(
            err.err().expect("3 chips cannot split 8 microbatches"),
            SwdnnError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn gradients_are_bit_identical_across_chip_counts() {
        let (x, y) = task(32, 5);
        let mut reference: Option<Vec<f64>> = None;
        for chips in [1usize, 2, 4, 8] {
            let mut t = trainer(chips, 8);
            for _ in 0..3 {
                t.step(&x, &y).unwrap();
            }
            let params = t.parameters();
            match &reference {
                None => reference = Some(params),
                Some(want) => assert_eq!(
                    &params, want,
                    "parameters diverged at {chips} chips — fixed-order reduction broken"
                ),
            }
        }
    }

    #[test]
    fn training_still_learns_under_data_parallelism() {
        let (x, y) = task(32, 6);
        let mut t = trainer(4, 8);
        let first = t.step(&x, &y).unwrap().loss;
        let mut last = first;
        for _ in 0..40 {
            last = t.step(&x, &y).unwrap().loss;
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn more_chips_cut_compute_time_but_pay_allreduce() {
        let (x, y) = task(32, 7);
        let mut one = trainer(1, 8);
        let mut eight = trainer(8, 8);
        let r1 = one.step(&x, &y).unwrap();
        let r8 = eight.step(&x, &y).unwrap();
        assert!((r1.compute_us - 8.0 * r8.compute_us).abs() < 1e-9);
        assert_eq!(r1.allreduce.time_us, 0.0, "single chip pays no wire time");
        assert!(r8.allreduce.time_us > 0.0);
        assert!(r8.step_us < r1.step_us, "scaling must still win overall");
    }

    #[test]
    fn counters_and_trace_cover_every_chip() {
        let (x, y) = task(32, 8);
        let net = lenet_12(4, 1, 2, Engine::Host, 42).unwrap();
        let mut t = DataParallelTrainer::new(
            net,
            Optimizer::sgd(0.1),
            TrainConfig {
                chips: 4,
                microbatches: 8,
                trace: true,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        t.step(&x, &y).unwrap();
        for chip in 0..4 {
            assert_eq!(t.tags.get(&chip_tag(chip, "microbatches")), 2);
            assert!(t.tags.get(&link_tag(&format!("ring-{chip}"), "bytes")) > 0);
        }
        let trace = t.take_trace();
        let pids: std::collections::BTreeSet<u64> = trace.events.iter().map(|e| e.pid).collect();
        assert_eq!(pids.len(), 4, "one track per chip");
        assert!(trace.category_dur_us("train") > 0.0);
    }

    #[test]
    fn step_rejects_mismatched_batches() {
        let (x, y) = task(30, 9); // 30 not divisible by 8
        let mut t = trainer(2, 8);
        assert!(t.step(&x, &y).is_err());
    }
}
