//! Fixed-order gradient allreduce: schedule-independent numerics with
//! schedule-dependent timing.
//!
//! Floating-point addition is not associative, so a literal ring
//! reduce-scatter — where each segment's partial sums accumulate in ring
//! order starting from a different chip — produces gradients that drift
//! with the chip count. swDNN's whole verification story (golden
//! digests, zero-drift chaos gates) rests on bit-identical numerics, so
//! the cluster fixes the *reduction order by microbatch index*: the
//! reduced gradient is defined as
//!
//! ```text
//! g = (g_0 + g_1 + … + g_{M-1}) · (1/M)     — left to right, always
//! ```
//!
//! regardless of which chip owns which microbatch and which collective
//! schedule moves the bytes. The interconnect schedule (ring for big
//! tensors, tree for small — [`sw_perfmodel::InterconnectSpec`]) decides
//! only the simulated *time* and the per-link *wire bytes*; the sum
//! itself is replayed in index order. That is exactly the trade a real
//! deterministic-training deployment makes (sacrifice the in-network
//! reduction, keep the schedule's bandwidth pattern), and it is what
//! lets `tests/cluster.rs` assert gradient bit-identity at 1/2/4/8
//! chips.

use crate::layers::Layer;
use sw_perfmodel::{AllreduceKind, InterconnectSpec};

/// One allreduce's modeled cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AllreduceReport {
    pub kind: AllreduceKind,
    /// Gradient payload, bytes (8 bytes per parameter).
    pub tensor_bytes: u64,
    /// Simulated collective time, µs.
    pub time_us: f64,
    /// Bytes each chip put on the wire under the chosen schedule.
    pub wire_bytes_per_chip: u64,
}

/// Cost the allreduce of a `params`-parameter gradient across `chips`
/// on `net`, picking ring or tree by modeled time.
pub fn plan_allreduce(net: &InterconnectSpec, params: usize, chips: usize) -> AllreduceReport {
    let tensor_bytes = (params * 8) as u64;
    let (kind, time_us) = net.allreduce_us(tensor_bytes, chips);
    AllreduceReport {
        kind,
        tensor_bytes,
        time_us,
        wire_bytes_per_chip: net.allreduce_wire_bytes_per_chip(kind, tensor_bytes, chips),
    }
}

/// Sum per-microbatch gradient vectors strictly left to right. All
/// inputs must be the same length (one flattened gradient per
/// microbatch, in the stable `visit_params` walk order).
pub fn reduce_fixed_order(per_microbatch: &[Vec<f64>]) -> Vec<f64> {
    let Some(first) = per_microbatch.first() else {
        return Vec::new();
    };
    let mut acc = vec![0.0f64; first.len()];
    for g in per_microbatch {
        assert_eq!(g.len(), acc.len(), "gradient shards must agree in length");
        for (a, v) in acc.iter_mut().zip(g) {
            *a += v;
        }
    }
    acc
}

/// Flatten every layer's gradients into one vector (stable
/// `visit_params` order) and zero the in-layer gradients so the next
/// microbatch's backward starts from scratch.
pub fn take_gradients(layers: &mut [Box<dyn Layer>]) -> Vec<f64> {
    let mut flat = Vec::new();
    for layer in layers {
        layer.visit_params(&mut |_, g| {
            flat.extend_from_slice(g);
            g.fill(0.0);
        });
    }
    flat
}

/// Write a flattened gradient back into the layers' gradient slots (the
/// inverse walk of [`take_gradients`]), so the optimizer applies the
/// reduced gradient exactly as if one device had computed it.
pub fn load_gradients(layers: &mut [Box<dyn Layer>], flat: &[f64]) {
    let mut off = 0usize;
    for layer in layers {
        layer.visit_params(&mut |_, g| {
            g.copy_from_slice(&flat[off..off + g.len()]);
            off += g.len();
        });
    }
    assert_eq!(off, flat.len(), "gradient vector must match the network");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;

    #[test]
    fn fixed_order_sum_is_left_to_right() {
        // Values whose rounding depends on order: (0.1 + 0.2) + 0.3
        // rounds to 0.6000000000000001 while (0.3 + 0.2) + 0.1 rounds
        // to 0.6 — the classic f64 non-associativity.
        let shards = vec![vec![0.1f64], vec![0.2], vec![0.3]];
        let fwd = reduce_fixed_order(&shards)[0];
        assert_eq!(fwd, (0.1 + 0.2) + 0.3);
        let rev: Vec<Vec<f64>> = shards.iter().rev().cloned().collect();
        assert_ne!(
            fwd,
            reduce_fixed_order(&rev)[0],
            "order must matter for this data, or the test proves nothing"
        );
    }

    #[test]
    fn take_and_load_round_trip() {
        let mut layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Linear::new(3, 2, 1)),
            Box::new(Linear::new(2, 2, 2)),
        ];
        // Paint distinguishable gradients.
        let mut v = 0.5f64;
        for l in &mut layers {
            l.visit_params(&mut |_, g| {
                for gi in g.iter_mut() {
                    *gi = v;
                    v += 1.0;
                }
            });
        }
        let flat = take_gradients(&mut layers);
        assert_eq!(flat.len(), 3 * 2 + 2 + 2 * 2 + 2);
        assert_eq!(flat[0], 0.5);
        // take_gradients must have zeroed the slots.
        let mut cleared = true;
        for l in &mut layers {
            l.visit_params(&mut |_, g| cleared &= g.iter().all(|&x| x == 0.0));
        }
        assert!(cleared);
        load_gradients(&mut layers, &flat);
        let back = take_gradients(&mut layers);
        assert_eq!(back, flat, "load/take round-trips bit-exactly");
    }

    #[test]
    fn plan_allreduce_matches_the_interconnect_model() {
        let net = InterconnectSpec::sw_cluster();
        let r = plan_allreduce(&net, 1 << 20, 8);
        assert_eq!(r.tensor_bytes, 8 << 20);
        assert_eq!(r.kind, AllreduceKind::Ring, "8 MB gradient rides the ring");
        assert!(r.time_us > 0.0);
        let single = plan_allreduce(&net, 1 << 20, 1);
        assert_eq!(single.time_us, 0.0);
        assert_eq!(single.wire_bytes_per_chip, 0);
    }
}
