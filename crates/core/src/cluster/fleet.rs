//! The fleet: N serving chips behind one front door.
//!
//! Each chip is a full [`ServeEngine`] — its own plan cache, micro
//! batcher, circuit breakers, logical clock, and (optionally) its own
//! [`sw_runtime::ExecutionContext`] worker pool. The [`Cluster`] front
//! door routes every request through the [`super::router::ShapeRouter`]
//! (consistent-hash primary, least-loaded spill), charges the ingress
//! link's latency + wire time from the modeled
//! [`sw_perfmodel::InterconnectSpec`] into the request's arrival time,
//! and hands it to the chosen chip's engine — so cross-chip transfers
//! live on the same deterministic logical clock as everything else.
//!
//! Chip failure is first-class: [`Cluster::fail_chip`] marks a chip
//! down, evacuates its queued requests, and reroutes them (one more
//! link charge — moving work is not free) to surviving chips. High
//! priority work is never lost: it either completes on another chip or
//! is accounted as shed by that chip's own admission control.

use super::router::ShapeRouter;
use crate::error::SwdnnError;
use crate::serve::{Completion, Priority, RequestClass, ServeConfig, ServeEngine, ServeSummary};
use sw_obs::{chip_tag, link_tag, ChromeTrace, TagCounters};
use sw_perfmodel::{InterconnectSpec, Topology};
use sw_tensor::ConvShape;

/// Cluster construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Simulated chips in the fleet.
    pub chips: usize,
    /// Per-chip serving configuration (every chip gets an identical
    /// engine; their states diverge only through the traffic they see).
    pub serve: ServeConfig,
    pub interconnect: InterconnectSpec,
    /// Switch-group structure. On a grouped topology every ingress
    /// transfer into a group rides that group's shared downlink, so
    /// simultaneous deliveries into one board serialize instead of
    /// enjoying imaginary dedicated wires. [`Topology::flat`] (the
    /// default) keeps the PR 7 behavior exactly.
    pub topology: Topology,
    /// Virtual nodes per chip on the consistent-hash ring.
    pub vnodes: usize,
    /// Queue depth at which the router spills a shape off its primary
    /// chip to the next ring arc instead of letting admission shed it.
    /// `None` tracks `serve.queue_limit` so overrides of the per-chip
    /// queue bound reshape the spill point too.
    pub route_spill_depth: Option<usize>,
    /// Give every chip its own (leaked, process-lifetime)
    /// [`sw_runtime::ExecutionContext`] instead of sharing the global
    /// pool. Worker pools are a host resource — the default shares one
    /// pool across chips; dedicated pools model hard isolation.
    pub dedicated_runtimes: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            chips: 4,
            serve: ServeConfig::default(),
            interconnect: InterconnectSpec::sw_cluster(),
            topology: Topology::flat(),
            vnodes: 16,
            route_spill_depth: None,
            dedicated_runtimes: false,
        }
    }
}

struct ChipNode {
    engine: ServeEngine,
    down: bool,
}

/// Fleet-level aggregates on top of the per-chip [`ServeSummary`]s.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterSummary {
    pub chips: usize,
    pub served: u64,
    pub rejected: u64,
    pub evicted: u64,
    pub timed_out: u64,
    /// Requests that spilled off their consistent-hash primary.
    pub spilled: u64,
    /// Requests rerouted by chip failure.
    pub rerouted: u64,
    pub p50_latency_us: u64,
    pub p99_latency_us: u64,
    pub high_p99_latency_us: u64,
    /// Total bytes charged to ingress links.
    pub ingress_bytes: u64,
}

/// N chips + router + modeled interconnect under one logical clock.
pub struct Cluster {
    cfg: ClusterConfig,
    router: ShapeRouter,
    chips: Vec<ChipNode>,
    /// Front-door clock: the latest departure time seen, µs.
    clock_us: u64,
    /// Running digest of every routing decision, for determinism tests.
    fingerprint: u64,
    spilled: u64,
    rerouted: u64,
    /// Per-group ingress downlink occupancy, µs — the grouped-topology
    /// serialization point (empty on a flat topology).
    ingress_busy_until: std::collections::BTreeMap<usize, u64>,
    /// Fleet-level keyed counters: `chip/N/…`, `link/ingress-N/…`,
    /// `link/uplink-G-0/…` on grouped topologies.
    pub tags: TagCounters,
}

impl Cluster {
    pub fn new(cfg: ClusterConfig) -> Result<Self, SwdnnError> {
        if cfg.chips == 0 {
            return Err(SwdnnError::ShapeMismatch {
                expected: "at least one chip".into(),
                got: "chips=0".into(),
            });
        }
        let mut chips = Vec::with_capacity(cfg.chips);
        for _ in 0..cfg.chips {
            let mut engine = ServeEngine::new(cfg.serve)?;
            if cfg.dedicated_runtimes {
                let rt: &'static sw_runtime::ExecutionContext =
                    Box::leak(Box::new(sw_runtime::ExecutionContext::new()));
                engine = engine.on_runtime(rt);
            }
            chips.push(ChipNode {
                engine,
                down: false,
            });
        }
        Ok(Self {
            router: ShapeRouter::new(cfg.chips, cfg.vnodes),
            cfg,
            chips,
            clock_us: 0,
            fingerprint: 0,
            spilled: 0,
            rerouted: 0,
            ingress_busy_until: std::collections::BTreeMap::new(),
            tags: TagCounters::new(),
        })
    }

    pub fn chips(&self) -> usize {
        self.chips.len()
    }

    pub fn now_us(&self) -> u64 {
        self.clock_us
    }

    /// The routing-decision digest so far — identical across runs (and
    /// worker-pool thread counts) for identical traffic.
    pub fn route_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    pub fn engine(&self, chip: usize) -> &ServeEngine {
        &self.chips[chip].engine
    }

    pub fn engine_mut(&mut self, chip: usize) -> &mut ServeEngine {
        &mut self.chips[chip].engine
    }

    pub fn is_down(&self, chip: usize) -> bool {
        self.chips[chip].down
    }

    fn loads(&self) -> Vec<usize> {
        self.chips.iter().map(|c| c.engine.queue_depth()).collect()
    }

    fn down_mask(&self) -> Vec<bool> {
        self.chips.iter().map(|c| c.down).collect()
    }

    fn spill_depth(&self) -> usize {
        self.cfg
            .route_spill_depth
            .unwrap_or(self.cfg.serve.queue_limit)
    }

    /// Route one request departing the front door at `depart_us` and
    /// deliver it over the ingress link (latency + wire time for the
    /// input tensor) to the chosen chip. Returns `(chip, request id)`.
    /// [`SwdnnError::Overloaded`] propagates from the chip's admission
    /// control; [`SwdnnError::ClusterUnavailable`] means every chip is
    /// down.
    pub fn submit_at(
        &mut self,
        shape: ConvShape,
        class: RequestClass,
        depart_us: u64,
    ) -> Result<(usize, u64), SwdnnError> {
        self.clock_us = self.clock_us.max(depart_us);
        let chip = self
            .router
            .route(&shape, &self.loads(), &self.down_mask(), self.spill_depth())
            .ok_or(SwdnnError::ClusterUnavailable {
                chips: self.chips.len(),
            })?;
        self.fingerprint = ShapeRouter::fold_fingerprint(self.fingerprint, &shape, chip);
        if chip != self.router.primary(&shape) {
            self.spilled += 1;
            self.tags.inc(&chip_tag(chip, "spill_in"));
        }
        self.deliver(chip, shape, class, depart_us)
    }

    /// Charge the ingress link and submit to `chip`'s engine.
    fn deliver(
        &mut self,
        chip: usize,
        shape: ConvShape,
        class: RequestClass,
        depart_us: u64,
    ) -> Result<(usize, u64), SwdnnError> {
        let bytes = (shape.input_shape().len() * 8) as u64;
        let transfer_us = self.cfg.interconnect.transfer_us(bytes).ceil() as u64;
        let mut start_us = depart_us;
        if let Some(group) = self.cfg.topology.group_of(chip) {
            // The board's shared downlink: wait for whatever is already
            // in flight into this group, then hold it for the transfer.
            let busy = self.ingress_busy_until.entry(group).or_insert(0);
            start_us = start_us.max(*busy);
            *busy = start_us + transfer_us;
            self.tags
                .add(&link_tag(&format!("uplink-{group}-0"), "bytes"), bytes);
            self.tags.add(
                &link_tag(&format!("uplink-{group}-0"), "busy_us"),
                transfer_us,
            );
        }
        let arrival_us = start_us + transfer_us;
        self.tags
            .add(&link_tag(&format!("ingress-{chip}"), "bytes"), bytes);
        self.tags.add(
            &link_tag(&format!("ingress-{chip}"), "busy_us"),
            transfer_us,
        );
        self.tags.inc(&chip_tag(chip, "routed"));
        match self.chips[chip]
            .engine
            .submit_arriving(shape, class, arrival_us)
        {
            Ok(id) => Ok((chip, id)),
            Err(e) => {
                if matches!(e, SwdnnError::Overloaded { .. }) {
                    self.tags.inc(&chip_tag(chip, "shed"));
                }
                Err(e)
            }
        }
    }

    /// Advance every chip's clock to `target_us`, dispatching whatever
    /// comes due. Returns total requests served this call.
    pub fn run_until(&mut self, target_us: u64) -> Result<usize, SwdnnError> {
        self.clock_us = self.clock_us.max(target_us);
        let mut served = 0;
        for chip in &mut self.chips {
            if !chip.down {
                served += chip.engine.run_until(target_us)?;
            }
        }
        Ok(served)
    }

    /// Drain every chip's queue dry.
    pub fn drain(&mut self) -> Result<usize, SwdnnError> {
        let mut served = 0;
        for chip in &mut self.chips {
            if !chip.down {
                served += chip.engine.drain()?;
            }
        }
        Ok(served)
    }

    /// Mark `chip` down and reroute its queued work to the survivors.
    /// Each evacuated request pays one more link transfer (departing at
    /// the failed chip's clock) and re-enters admission on its new chip
    /// — so it either completes elsewhere or is *accounted* as shed
    /// there, never silently lost. Returns `(rerouted, shed)` counts.
    pub fn fail_chip(&mut self, chip: usize) -> Result<(usize, usize), SwdnnError> {
        assert!(chip < self.chips.len());
        if self.chips[chip].down {
            return Ok((0, 0));
        }
        self.chips[chip].down = true;
        self.tags.inc(&chip_tag(chip, "failed"));
        let depart_us = self.chips[chip].engine.now_us().max(self.clock_us);
        let evacuated = self.chips[chip].engine.evacuate();
        let mut moved = 0;
        let mut shed = 0;
        for req in evacuated {
            let class = RequestClass {
                priority: req.priority,
                tenant: req.tenant,
                // Preserve the absolute dispatch deadline across the move.
                deadline_us: req.expires_us.map(|e| e.saturating_sub(depart_us)),
            };
            let target = self
                .router
                .route(
                    &req.shape,
                    &self.loads(),
                    &self.down_mask(),
                    self.spill_depth(),
                )
                .ok_or(SwdnnError::ClusterUnavailable {
                    chips: self.chips.len(),
                })?;
            self.fingerprint = ShapeRouter::fold_fingerprint(self.fingerprint, &req.shape, target);
            self.tags.inc(&chip_tag(target, "rerouted_in"));
            match self.deliver(target, req.shape, class, depart_us) {
                Ok(_) => moved += 1,
                Err(SwdnnError::Overloaded { .. }) => shed += 1,
                Err(e) => return Err(e),
            }
        }
        self.rerouted += moved as u64;
        Ok((moved, shed))
    }

    /// Bring a failed chip back into rotation (its breakers and caches
    /// kept whatever state they had).
    pub fn recover_chip(&mut self, chip: usize) {
        if self.chips[chip].down {
            self.chips[chip].down = false;
            self.tags.inc(&chip_tag(chip, "recovered"));
        }
    }

    /// All completions across chips as `(chip, completion)` pairs.
    pub fn completions(&self) -> Vec<(usize, Completion)> {
        let mut all = Vec::new();
        for (i, chip) in self.chips.iter().enumerate() {
            all.extend(chip.engine.completions().iter().map(|&c| (i, c)));
        }
        all
    }

    /// Per-chip serving summaries.
    pub fn chip_summaries(&self) -> Vec<ServeSummary> {
        self.chips.iter().map(|c| c.engine.summary()).collect()
    }

    /// Fleet-level aggregate. Latency percentiles are computed over the
    /// merged completion set, not averaged per chip.
    pub fn summary(&self) -> ClusterSummary {
        let per_chip = self.chip_summaries();
        let mut latencies: Vec<u64> = Vec::new();
        let mut high: Vec<u64> = Vec::new();
        for chip in &self.chips {
            for c in chip.engine.completions() {
                latencies.push(c.latency_us());
                if c.priority == Priority::High {
                    high.push(c.latency_us());
                }
            }
        }
        let pct = |mut v: Vec<u64>, p: f64| -> u64 {
            if v.is_empty() {
                return 0;
            }
            v.sort_unstable();
            let rank = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
            v[rank.min(v.len() - 1)]
        };
        let ingress_bytes = (0..self.chips.len())
            .map(|i| self.tags.get(&link_tag(&format!("ingress-{i}"), "bytes")))
            .sum();
        ClusterSummary {
            chips: self.chips.len(),
            served: per_chip.iter().map(|s| s.served).sum(),
            rejected: per_chip.iter().map(|s| s.rejected).sum(),
            evicted: per_chip.iter().map(|s| s.evicted).sum(),
            timed_out: per_chip.iter().map(|s| s.timed_out).sum(),
            spilled: self.spilled,
            rerouted: self.rerouted,
            p50_latency_us: pct(latencies.clone(), 50.0),
            p99_latency_us: pct(latencies, 99.0),
            high_p99_latency_us: pct(high, 99.0),
            ingress_bytes,
        }
    }

    /// Reset every chip's measurement window (post-warmup), keeping
    /// caches, breaker state, and clocks hot.
    pub fn reset_measurements(&mut self) {
        for chip in &mut self.chips {
            chip.engine.reset_measurements();
        }
        self.tags.reset();
        self.spilled = 0;
        self.rerouted = 0;
    }

    /// Merge every chip's Chrome trace into one fleet timeline, one
    /// `pid` (process track) per chip.
    pub fn take_trace(&mut self) -> ChromeTrace {
        let per_chip: Vec<ChromeTrace> = self
            .chips
            .iter_mut()
            .map(|c| c.engine.take_trace())
            .collect();
        ChromeTrace::merge_per_chip(per_chip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::BatchPolicy;
    use crate::zoo::serving_mix;

    fn cluster(chips: usize) -> Cluster {
        Cluster::new(ClusterConfig {
            chips,
            serve: ServeConfig {
                policy: BatchPolicy {
                    max_batch: 4,
                    deadline_us: 1_000,
                },
                queue_limit: 16,
                trace: true,
                ..ServeConfig::default()
            },
            ..ClusterConfig::default()
        })
        .unwrap()
    }

    fn mix_traffic(c: &mut Cluster, n: usize) {
        let shapes = serving_mix();
        for i in 0..n {
            let (_, shape) = shapes[i % shapes.len()];
            c.submit_at(shape, RequestClass::default(), (i as u64) * 50)
                .unwrap();
        }
    }

    #[test]
    fn fleet_serves_everything_and_spreads_shapes() {
        let mut c = cluster(4);
        mix_traffic(&mut c, 64);
        c.drain().unwrap();
        let s = c.summary();
        assert_eq!(s.served, 64);
        assert_eq!(s.rejected, 0);
        assert!(s.ingress_bytes > 0, "ingress links must be charged");
        // Each of the 4 mix shapes pins to its primary chip; the mix
        // must not all land on one chip.
        let routed: Vec<u64> = (0..4).map(|i| c.tags.get(&chip_tag(i, "routed"))).collect();
        assert!(
            routed.iter().filter(|&&r| r > 0).count() >= 2,
            "consistent hashing must use multiple chips: {routed:?}"
        );
    }

    #[test]
    fn link_time_is_charged_into_latency() {
        // One request through a cluster vs. one straight into an engine:
        // the cluster's completion must arrive later by the link time.
        let shape = serving_mix()[0].1;
        let mut c = cluster(1);
        c.submit_at(shape, RequestClass::default(), 0).unwrap();
        c.drain().unwrap();
        let cluster_latency = c.completions()[0].1.latency_us();

        let mut e = ServeEngine::new(ServeConfig {
            policy: BatchPolicy {
                max_batch: 4,
                deadline_us: 1_000,
            },
            queue_limit: 16,
            ..ServeConfig::default()
        })
        .unwrap();
        e.submit(shape).unwrap();
        e.drain().unwrap();
        let direct_latency = e.completions()[0].latency_us();
        // Latency is measured from chip arrival, so the numbers agree —
        // but the cluster's completion *timestamp* includes the link.
        assert_eq!(cluster_latency, direct_latency);
        let transfer = InterconnectSpec::sw_cluster()
            .transfer_us((shape.input_shape().len() * 8) as u64)
            .ceil() as u64;
        assert_eq!(
            c.completions()[0].1.completion_us,
            e.completions()[0].completion_us + transfer,
            "cluster completion is shifted by exactly the ingress transfer"
        );
    }

    #[test]
    fn routing_is_deterministic() {
        let run = || {
            let mut c = cluster(4);
            mix_traffic(&mut c, 48);
            c.drain().unwrap();
            (c.route_fingerprint(), c.summary().p99_latency_us)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chip_failure_reroutes_queued_work_without_losing_high_priority() {
        let mut c = cluster(4);
        let shapes = serving_mix();
        // Queue work everywhere without letting anything dispatch.
        let mut victim = None;
        for i in 0..16 {
            let (_, shape) = shapes[i % shapes.len()];
            let (chip, _) = c.submit_at(shape, RequestClass::default(), 0).unwrap();
            victim.get_or_insert(chip);
        }
        let victim = victim.unwrap();
        let queued_on_victim = c.engine(victim).queue_depth();
        assert!(queued_on_victim > 0);
        let (moved, shed) = c.fail_chip(victim).unwrap();
        assert_eq!(moved, queued_on_victim, "every queued request moves");
        assert_eq!(shed, 0);
        assert_eq!(c.engine(victim).queue_depth(), 0);
        c.drain().unwrap();
        let s = c.summary();
        assert_eq!(s.served, 16, "zero lost work across the failure");
        assert_eq!(s.rerouted as usize, moved);
        // Down chip takes no new traffic.
        for i in 0..8 {
            let (_, shape) = shapes[i % shapes.len()];
            let (chip, _) = c
                .submit_at(shape, RequestClass::default(), c.now_us())
                .unwrap();
            assert_ne!(chip, victim);
        }
        // Recovery puts it back in rotation.
        c.recover_chip(victim);
        assert!(!c.is_down(victim));
    }

    #[test]
    fn all_chips_down_is_a_structured_error() {
        let mut c = cluster(2);
        c.fail_chip(0).unwrap();
        c.fail_chip(1).unwrap();
        let err = c
            .submit_at(serving_mix()[0].1, RequestClass::default(), 0)
            .unwrap_err();
        assert!(matches!(err, SwdnnError::ClusterUnavailable { chips: 2 }));
    }

    #[test]
    fn saturated_primary_spills_instead_of_shedding() {
        let mut c = Cluster::new(ClusterConfig {
            chips: 2,
            serve: ServeConfig {
                policy: BatchPolicy {
                    max_batch: 4,
                    deadline_us: 1_000_000,
                },
                queue_limit: 4,
                ..ServeConfig::default()
            },
            route_spill_depth: Some(4),
            ..ClusterConfig::default()
        })
        .unwrap();
        let shape = serving_mix()[0].1;
        // 8 same-shape requests, queue limit 4: the second half must
        // spill to the other chip instead of being shed.
        for _ in 0..8 {
            c.submit_at(shape, RequestClass::default(), 0).unwrap();
        }
        let s = c.summary();
        assert_eq!(s.rejected, 0);
        assert_eq!(s.spilled, 4, "half the traffic spilled");
        c.drain().unwrap();
        assert_eq!(c.summary().served, 8);
    }

    #[test]
    fn grouped_topology_serializes_ingress_on_the_board_downlink() {
        let grouped_cfg = ClusterConfig {
            chips: 1,
            serve: ServeConfig {
                policy: BatchPolicy {
                    max_batch: 4,
                    deadline_us: 1_000,
                },
                queue_limit: 16,
                ..ServeConfig::default()
            },
            topology: Topology::sw_supernode(),
            ..ClusterConfig::default()
        };
        let shape = serving_mix()[0].1;
        let transfer = InterconnectSpec::sw_cluster()
            .transfer_us((shape.input_shape().len() * 8) as u64)
            .ceil() as u64;
        let mut grouped = Cluster::new(grouped_cfg).unwrap();
        let mut flat = Cluster::new(ClusterConfig {
            topology: Topology::flat(),
            ..grouped_cfg
        })
        .unwrap();
        // Two simultaneous departures into the same board: the flat
        // model gives each its own wire, the grouped model makes the
        // second wait for the shared downlink.
        for c in [&mut grouped, &mut flat] {
            c.submit_at(shape, RequestClass::default(), 0).unwrap();
            c.submit_at(shape, RequestClass::default(), 0).unwrap();
            c.drain().unwrap();
        }
        assert_eq!(grouped.summary().served, 2);
        let uplink_busy = grouped
            .tags
            .get(&link_tag("uplink-0-0", "busy_us"));
        assert_eq!(uplink_busy, 2 * transfer, "both transfers charged");
        assert_eq!(flat.tags.get(&link_tag("uplink-0-0", "bytes")), 0);
        // Latency is measured from chip arrival and both requests share
        // one batch's completion time, so serialized arrivals show up as
        // a latency spread of exactly one transfer; the flat model's
        // simultaneous arrivals show none.
        let spread = |c: &Cluster| {
            let lat: Vec<u64> = c
                .completions()
                .iter()
                .map(|(_, d)| d.latency_us())
                .collect();
            lat.iter().max().unwrap() - lat.iter().min().unwrap()
        };
        assert_eq!(spread(&flat), 0, "flat: both arrive together");
        assert_eq!(
            spread(&grouped),
            transfer,
            "grouped: second arrival waits out one transfer on the downlink"
        );
    }

    #[test]
    fn fleet_trace_has_one_track_per_chip() {
        let mut c = cluster(4);
        mix_traffic(&mut c, 32);
        c.drain().unwrap();
        let trace = c.take_trace();
        let pids: std::collections::BTreeSet<u64> = trace
            .events
            .iter()
            .filter(|e| e.cat == "serve")
            .map(|e| e.pid)
            .collect();
        assert!(pids.len() >= 2, "serve spans on multiple chip tracks");
        assert!(pids.iter().all(|&p| p < 4));
    }
}
