//! Library error type.

use sw_sim::SimError;
use sw_tensor::ConvShape;

/// Errors surfaced by swDNN operations.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a wildcard arm
/// so new failure classes (like the fault-injection variants added for the
/// resilient executor) are not breaking changes.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SwdnnError {
    /// The plan cannot run this shape on the 8×8 mesh (divisibility or
    /// LDM-capacity constraints); callers may fall back to another plan.
    Unsupported {
        plan: &'static str,
        shape: ConvShape,
        reason: String,
    },
    /// The underlying simulator rejected the execution.
    Sim(SimError),
    /// Operand shapes disagree with the layer configuration.
    ShapeMismatch { expected: String, got: String },
    /// No plan can run the shape at all.
    NoPlan(ConvShape),
    /// The planner examined the shape and rejected it for a structured,
    /// reportable reason (stride/dilation the mesh plans cannot express,
    /// divisibility, or LDM-budget exhaustion). Unlike the catch-all
    /// [`SwdnnError::NoPlan`], the reason survives into fallback logs and
    /// the Chrome trace so a silent host degrade is diagnosable.
    PlanRejected { shape: ConvShape, reason: String },
    /// A numeric guard tripped: non-finite values or a verified-execution
    /// spot check diverging from the reference kernel.
    Numeric { context: String, detail: String },
    /// Every recovery attempt (retries and plan fallbacks) failed; `last`
    /// is the simulator error that ended the final attempt.
    FaultExhausted { attempts: u32, last: SimError },
    /// The serving queue is at capacity; the request was rejected rather
    /// than queued unboundedly. The variant carries enough structure for a
    /// client to act on the rejection: the observed queue depth, the
    /// configured bound, and a suggested retry delay in logical µs (the
    /// time until the batcher's next deadline release frees capacity).
    Overloaded {
        depth: usize,
        limit: usize,
        retry_after_us: u64,
    },
    /// Every chip in the cluster is marked down; no route exists for any
    /// request until one recovers.
    ClusterUnavailable { chips: usize },
    /// A data-parallel step has fewer microbatches than chips, so some
    /// chips would sit idle all step. Ragged distribution handles every
    /// other mismatch (`M mod C ≠ 0`); this is the one shape the trainer
    /// refuses outright.
    InsufficientMicrobatches { microbatches: usize, chips: usize },
}

impl std::fmt::Display for SwdnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwdnnError::Unsupported {
                plan,
                shape,
                reason,
            } => {
                write!(f, "plan {plan} cannot run {shape}: {reason}")
            }
            SwdnnError::Sim(e) => write!(f, "simulator: {e}"),
            SwdnnError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            SwdnnError::NoPlan(s) => write!(f, "no convolution plan supports {s}"),
            SwdnnError::PlanRejected { shape, reason } => {
                write!(f, "planner rejected {shape}: {reason}")
            }
            SwdnnError::Numeric { context, detail } => {
                write!(f, "numeric check failed in {context}: {detail}")
            }
            SwdnnError::FaultExhausted { attempts, last } => {
                write!(
                    f,
                    "all {attempts} recovery attempts failed; last error: {last}"
                )
            }
            SwdnnError::Overloaded {
                depth,
                limit,
                retry_after_us,
            } => {
                write!(
                    f,
                    "serving queue overloaded: depth {depth} at limit {limit}; \
                     request rejected, retry after {retry_after_us} us"
                )
            }
            SwdnnError::ClusterUnavailable { chips } => {
                write!(f, "all {chips} cluster chips are down; no route exists")
            }
            SwdnnError::InsufficientMicrobatches {
                microbatches,
                chips,
            } => {
                write!(
                    f,
                    "{microbatches} microbatches cannot feed {chips} chips; \
                     need at least one microbatch per chip"
                )
            }
        }
    }
}

impl std::error::Error for SwdnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwdnnError::Sim(e) | SwdnnError::FaultExhausted { last: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for SwdnnError {
    fn from(e: SimError) -> Self {
        SwdnnError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_is_informative() {
        let e = SwdnnError::Unsupported {
            plan: "image_aware",
            shape: ConvShape::new(1, 1, 1, 1, 1, 1, 1),
            reason: "Ni must be a multiple of 8".into(),
        };
        let s = e.to_string();
        assert!(s.contains("image_aware") && s.contains("multiple of 8"));
    }

    #[test]
    fn plan_rejected_display_names_shape_and_reason() {
        let e = SwdnnError::PlanRejected {
            shape: ConvShape::new(8, 16, 16, 4, 4, 3, 3),
            reason: "stride 2 not expressible by dense mesh plans".into(),
        };
        let s = e.to_string();
        assert!(s.contains("rejected") && s.contains("stride 2"), "{s}");
    }

    #[test]
    fn sim_errors_convert() {
        let e: SwdnnError = SimError::Program("x".into()).into();
        assert!(matches!(e, SwdnnError::Sim(_)));
    }

    #[test]
    fn numeric_display_names_the_layer() {
        let e = SwdnnError::Numeric {
            context: "layer 3 (conv)".into(),
            detail: "output contains NaN".into(),
        };
        let s = e.to_string();
        assert!(s.contains("layer 3") && s.contains("NaN"), "{s}");
    }

    #[test]
    fn fault_exhausted_display_reports_attempts_and_cause() {
        let e = SwdnnError::FaultExhausted {
            attempts: 3,
            last: SimError::DmaFault {
                row: 1,
                col: 2,
                attempts: 5,
            },
        };
        let s = e.to_string();
        assert!(s.contains("3 recovery attempts"), "{s}");
        assert!(s.contains("CPE(1,2)"), "{s}");
    }

    #[test]
    fn overloaded_display_reports_depth_limit_and_retry_hint() {
        let e = SwdnnError::Overloaded {
            depth: 64,
            limit: 64,
            retry_after_us: 1_500,
        };
        let s = e.to_string();
        assert!(s.contains("64") && s.contains("rejected"), "{s}");
        assert!(s.contains("1500 us"), "retry hint must be printed: {s}");
    }

    #[test]
    fn source_chains_to_the_sim_error() {
        let sim = SimError::CpeOffline { row: 4, col: 4 };
        let e = SwdnnError::Sim(sim.clone());
        let src = e.source().expect("Sim must chain");
        assert_eq!(src.to_string(), sim.to_string());

        let e = SwdnnError::FaultExhausted {
            attempts: 2,
            last: sim.clone(),
        };
        assert_eq!(
            e.source().expect("FaultExhausted must chain").to_string(),
            sim.to_string()
        );

        let e = SwdnnError::NoPlan(ConvShape::new(1, 1, 1, 1, 1, 1, 1));
        assert!(e.source().is_none());
    }
}
