//! Library error type.

use sw_sim::SimError;
use sw_tensor::ConvShape;

/// Errors surfaced by swDNN operations.
#[derive(Clone, Debug, PartialEq)]
pub enum SwdnnError {
    /// The plan cannot run this shape on the 8×8 mesh (divisibility or
    /// LDM-capacity constraints); callers may fall back to another plan.
    Unsupported { plan: &'static str, shape: ConvShape, reason: String },
    /// The underlying simulator rejected the execution.
    Sim(SimError),
    /// Operand shapes disagree with the layer configuration.
    ShapeMismatch { expected: String, got: String },
    /// No plan can run the shape at all.
    NoPlan(ConvShape),
}

impl std::fmt::Display for SwdnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwdnnError::Unsupported { plan, shape, reason } => {
                write!(f, "plan {plan} cannot run {shape}: {reason}")
            }
            SwdnnError::Sim(e) => write!(f, "simulator: {e}"),
            SwdnnError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            SwdnnError::NoPlan(s) => write!(f, "no convolution plan supports {s}"),
        }
    }
}

impl std::error::Error for SwdnnError {}

impl From<SimError> for SwdnnError {
    fn from(e: SimError) -> Self {
        SwdnnError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SwdnnError::Unsupported {
            plan: "image_aware",
            shape: ConvShape::new(1, 1, 1, 1, 1, 1, 1),
            reason: "Ni must be a multiple of 8".into(),
        };
        let s = e.to_string();
        assert!(s.contains("image_aware") && s.contains("multiple of 8"));
    }

    #[test]
    fn sim_errors_convert() {
        let e: SwdnnError = SimError::Program("x".into()).into();
        assert!(matches!(e, SwdnnError::Sim(_)));
    }
}
