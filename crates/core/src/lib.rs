//! # swDNN-rs
//!
//! A from-scratch Rust reproduction of *swDNN: A Library for Accelerating
//! Deep Learning Applications on Sunway TaihuLight* (Fang et al.,
//! IPDPS 2017), running against a faithful software model of the SW26010
//! many-core processor (`sw-sim`).
//!
//! The library provides:
//!
//! * **Convolution plans** ([`plans`]) — the paper's optimized mappings of
//!   the convolution kernel onto the 64-CPE mesh of one core group:
//!   - [`plans::ImageAwarePlan`] (Algorithm 1): LDM blocking on batch and
//!     output-column dimensions, `(4, C, R, N, B/4)` data layout;
//!   - [`plans::BatchAwarePlan`] (Algorithm 2): pixel streaming across a
//!     large batch, `(4, B/4, C, R, N)` layout;
//!   - both built on the register-communication GEMM of §V-A (Fig. 3) and
//!     the software-pipelined inner kernel of §VI;
//!   - [`plans::DirectPlan`]: the pathological direct-`gload` mapping kept
//!     for the Fig. 2 ablation;
//!   - [`plans::ReferencePlan`]: host fallback for shapes the mesh plans
//!     do not support.
//! * **A user-facing convolution API** ([`conv`]) with automatic plan
//!   selection driven by the `sw-perfmodel` three-level model, plus
//!   backward passes for training.
//! * **DNN layers and training** ([`layers`], [`network`]) — convolution,
//!   pooling, ReLU, fully-connected, softmax cross-entropy, and a
//!   sequential network with SGD, sufficient to train a small CNN
//!   end-to-end (the paper's focus is "especially ... the training part").
//! * **An executor** ([`executor`]) that runs a configuration through the
//!   simulator and reports measured Gflops next to the model's prediction,
//!   which is what the benchmark harness uses to regenerate the paper's
//!   tables and figures.
//! * **Cluster scale-out** ([`cluster`]) — N chips behind a deterministic
//!   consistent-hash router for serving, and ring/tree-allreduce
//!   data-parallel training with gradients bit-identical to single-chip
//!   at any chip count.

pub mod cluster;
pub mod conv;
pub mod data;
pub mod error;
pub mod executor;
pub mod kernel_cost;
pub mod layers;
pub mod network;
pub mod optim;
pub mod plans;
pub mod resilient;
pub mod serve;
pub mod tune;
pub mod zoo;

pub use cluster::{Cluster, ClusterConfig, DataParallelTrainer};
pub use conv::Conv2d;
pub use error::SwdnnError;
pub use executor::{ConvReport, Executor};
pub use optim::Optimizer;
pub use plans::{
    lower_schedule, BatchAwarePlan, ConvPlan, ConvRun, DirectPlan, ImageAwarePlan, LoopOrder,
    LowerCtx, MeshGrain, PatchGemmPlan, ReferencePlan, Schedule,
};
pub use resilient::{
    RecoveryEvent, RecoveryOutcome, ResilientExecutor, ResilientReport, VerifyPolicy,
};
pub use serve::{
    BatchPolicy, PlanCache, ServeConfig, ServeEngine, ServeSummary, ShardedDispatcher,
};
pub use sw_sim::{FaultPlan, RetryPolicy};

pub use sw_perfmodel::{ChipSpec, PlanKind};
pub use sw_tensor::{ConvShape, Layout, Shape4, Tensor4};
