//! Ready-made network architectures.
//!
//! Small, classic CNN shapes wired from the layer stack — the "deep
//! learning applications" of the title, sized so the examples and tests
//! can train them in seconds while still exercising every layer type.

use crate::error::SwdnnError;
use crate::layers::{
    BatchNorm2d, Conv2dLayer, ConvGeneralLayer, Dropout, Engine, Linear, MaxPool2, ReLU, Tanh,
};
use crate::network::Sequential;
use sw_tensor::conv_general::ConvGeometry;
use sw_tensor::ConvShape;

/// A LeNet-style stack for `in_ch × 12 × 12` inputs:
/// conv3x3 → tanh → pool → conv3x3 → tanh → fc.
///
/// `engine` selects host vs simulated-chip convolutions.
pub fn lenet_12(
    batch: usize,
    in_ch: usize,
    classes: usize,
    engine: Engine,
    seed: u64,
) -> Result<Sequential, SwdnnError> {
    let conv1 = Conv2dLayer::new(ConvShape::new(batch, in_ch, 6, 10, 10, 3, 3), engine, seed)?;
    let conv2 = Conv2dLayer::new(ConvShape::new(batch, 6, 8, 3, 3, 3, 3), engine, seed + 1)?;
    Ok(Sequential::new(vec![
        Box::new(conv1),
        Box::new(Tanh::new()),
        Box::new(MaxPool2::new()), // 10 -> 5
        Box::new(conv2),           // 5 -> 3
        Box::new(Tanh::new()),
        Box::new(Linear::new(8 * 3 * 3, classes, seed + 2)),
    ]))
}

/// A modern-flavoured block for `1 × H × W` inputs (H, W ≥ 10, even after
/// the stem): strided stem conv + BN + ReLU, a same-padded body conv,
/// pooling, dropout and a classifier.
pub fn mini_convnet(classes: usize, input_hw: usize, seed: u64) -> Result<Sequential, SwdnnError> {
    let stem = ConvGeometry::valid(3, 3); // H -> H-2
    let body = ConvGeometry::same(3, 3);
    let after_stem = input_hw - 2;
    if !after_stem.is_multiple_of(2) {
        return Err(SwdnnError::ShapeMismatch {
            expected: "input_hw such that input_hw-2 is even".into(),
            got: format!("{input_hw}"),
        });
    }
    let pooled = after_stem / 2;
    Ok(Sequential::new(vec![
        Box::new(ConvGeneralLayer::new(stem, 1, 8, seed)),
        Box::new(BatchNorm2d::new(8)),
        Box::new(ReLU::new()),
        Box::new(ConvGeneralLayer::new(body, 8, 8, seed + 1)),
        Box::new(ReLU::new()),
        Box::new(MaxPool2::new()),
        Box::new(Dropout::new(0.1, seed + 2)),
        Box::new(Linear::new(8 * pooled * pooled, classes, seed + 3)),
    ]))
}

/// The conv layers of a VGG-like column at the paper's scale, for the
/// benchmarking examples: `(name, shape)` pairs.
pub fn vgg_like_conv_stack(batch: usize) -> Vec<(&'static str, ConvShape)> {
    vec![
        ("conv2_1", ConvShape::new(batch, 64, 128, 64, 64, 3, 3)),
        ("conv2_2", ConvShape::new(batch, 128, 128, 64, 64, 3, 3)),
        ("conv3_1", ConvShape::new(batch, 128, 256, 32, 32, 3, 3)),
        ("conv3_2", ConvShape::new(batch, 256, 256, 32, 32, 3, 3)),
        ("conv4_1", ConvShape::new(batch, 256, 384, 16, 16, 3, 3)),
        ("conv4_2", ConvShape::new(batch, 384, 384, 16, 16, 3, 3)),
    ]
}

/// The mixed-shape serving menu for the chaos bench: small, mesh-eligible
/// convolutions (channels in multiples of 8, output rows in multiples of
/// 4 so every row split in {1, 2, 4} divides) cheap enough that the bench
/// can also run them with real arithmetic when checking completed outputs
/// against fault-free golden digests.
pub fn serving_mix() -> Vec<(&'static str, ConvShape)> {
    vec![
        ("mix_base", ConvShape::new(16, 8, 8, 8, 8, 3, 3)),
        ("mix_wide", ConvShape::new(16, 8, 16, 8, 8, 3, 3)),
        ("mix_deep", ConvShape::new(8, 16, 16, 8, 8, 3, 3)),
        ("mix_tall", ConvShape::new(8, 8, 8, 16, 8, 3, 3)),
    ]
}

/// Sanity helper: forward a zero batch through a network and return the
/// logits shape, proving the plumbing end to end.
pub fn smoke_forward(
    net: &mut Sequential,
    batch: usize,
    in_ch: usize,
    hw: usize,
) -> Result<sw_tensor::Shape4, SwdnnError> {
    let x = sw_tensor::Tensor4::zeros(
        sw_tensor::Shape4::new(batch, in_ch, hw, hw),
        sw_tensor::Layout::Nchw,
    );
    Ok(net.forward(&x)?.shape())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sw_tensor::{Layout, Shape4, Tensor4};

    #[test]
    fn lenet_forward_shape() {
        let mut net = lenet_12(4, 1, 10, Engine::Host, 1).unwrap();
        let s = smoke_forward(&mut net, 4, 1, 12).unwrap();
        assert_eq!(s, Shape4::new(4, 10, 1, 1));
    }

    #[test]
    fn mini_convnet_forward_shape() {
        let mut net = mini_convnet(5, 12, 2).unwrap();
        let s = smoke_forward(&mut net, 3, 1, 12).unwrap();
        assert_eq!(s, Shape4::new(3, 5, 1, 1));
    }

    #[test]
    fn mini_convnet_rejects_odd_geometry() {
        assert!(mini_convnet(5, 11, 2).is_err());
    }

    #[test]
    fn lenet_trains_on_quadrant_task() {
        let batch = 16;
        let mut net = lenet_12(batch, 1, 2, Engine::Host, 3).unwrap();
        let make = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut x = Tensor4::zeros(Shape4::new(batch, 1, 12, 12), Layout::Nchw);
            let mut y = Vec::new();
            for b in 0..batch {
                let class = rng.gen_range(0..2usize);
                for r in 0..12 {
                    for c in 0..12 {
                        let v = if (class == 0) == (c < 6) { 1.0 } else { 0.1 };
                        x.set(b, 0, r, c, v + rng.gen_range(-0.05..0.05));
                    }
                }
                y.push(class);
            }
            (x, y)
        };
        let (x, y) = make(5);
        let first = net.train_step(&x, &y, 0.1).unwrap();
        for _ in 0..40 {
            net.train_step(&x, &y, 0.1).unwrap();
        }
        let (xt, yt) = make(6);
        assert!(net.accuracy(&xt, &yt).unwrap() >= 0.85);
        let last = net.train_step(&x, &y, 0.1).unwrap();
        assert!(last < first);
    }

    #[test]
    fn serving_mix_shapes_are_mesh_eligible_and_shardable() {
        for (name, shape) in serving_mix() {
            assert!(shape.is_valid(), "{name}");
            assert_eq!(shape.ni % 8, 0, "{name}");
            assert_eq!(shape.no % 8, 0, "{name}");
            assert_eq!(shape.ro % 4, 0, "{name}: every split in 1/2/4 divides");
        }
        assert!(serving_mix().len() >= 4, "mixed traffic needs variety");
    }

    #[test]
    fn vgg_stack_shapes_are_mesh_eligible() {
        for (name, shape) in vgg_like_conv_stack(128) {
            assert!(shape.is_valid(), "{name}");
            assert_eq!(shape.ni % 8, 0, "{name}");
            assert_eq!(shape.no % 8, 0, "{name}");
        }
    }
}
