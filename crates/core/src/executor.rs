//! The executor: run a configuration through the simulator and put the
//! measured numbers next to the model's predictions.
//!
//! This is the engine behind the Table III and Fig. 7/9 regenerations: for
//! each parameter configuration it selects a plan, obtains simulated timing
//! (sampled extrapolation at paper scale), computes achieved Gflops and
//! effective MEM↔LDM bandwidth from the traffic counters, and evaluates the
//! analytic model for comparison.

use crate::conv::Conv2d;
use crate::error::SwdnnError;
use crate::plans::PlanTiming;
use sw_perfmodel::{
    comm_optimal_permille, mem_comm_lower_bound_bytes, Blocking, ChipSpec, ConvPerfModel,
    PerfEstimate, PlanKind,
};
use sw_sim::run_multi_cg_on;
use sw_tensor::ConvShape;

/// Everything measured and modeled for one configuration.
#[derive(Clone, Debug)]
pub struct ConvReport {
    pub shape: ConvShape,
    pub plan_name: String,
    pub plan_kind: PlanKind,
    pub blocking: Blocking,
    /// Simulated timing on one CG.
    pub timing: PlanTiming,
    /// Measured Gflops on one CG.
    pub gflops_cg: f64,
    /// Fraction of CG peak.
    pub efficiency: f64,
    /// Achieved MEM→LDM bandwidth, GB/s.
    pub mbw_measured: f64,
    /// Worker-pool handoffs (condvar wake + join cycles) the simulation
    /// cost on the host — the superstep tax. Fused supersteps pay
    /// O(rotations), the unfused loop O(rounds).
    pub pool_handoffs: u64,
    /// Closed-form lower bound on MEM→LDM read traffic for this shape
    /// ([`mem_comm_lower_bound_bytes`]).
    pub comm_lower_bound_bytes: u64,
    /// Attained fraction of comm-optimal in permille: `1000·bound/measured`
    /// with `dma_get_bytes` as the measured traffic, clamped to 1000.
    pub comm_optimal_permille: u64,
    /// Analytic model output for the same choice.
    pub model: PerfEstimate,
}

impl ConvReport {
    /// Flatten this report into the observability layer's
    /// [`sw_obs::PerfReport`]: measured counters and the analytic model's
    /// RBW/MBW predictions, one [`sw_obs::LevelIo`] per hierarchy link, in
    /// the schema the bench snapshot/comparator pipeline consumes.
    pub fn obs_report(&self, chip: &ChipSpec) -> sw_obs::PerfReport {
        let stats = &self.timing.stats;
        let secs = chip.cycles_to_seconds(self.timing.cycles);
        let mem_bytes = stats.mem_bytes();
        let mem = sw_obs::LevelIo {
            level: sw_obs::Level::Mem,
            required_gbps: self.model.rbw_mem_ldm,
            modeled_gbps: self.model.mbw_mem_ldm,
            measured_gbps: if secs > 0.0 {
                mem_bytes as f64 / secs / 1e9
            } else {
                0.0
            },
            bytes: mem_bytes,
        };
        let reg = sw_obs::LevelIo {
            level: sw_obs::Level::Reg,
            required_gbps: self.model.rbw_ldm_reg,
            modeled_gbps: self.model.mbw_ldm_reg,
            measured_gbps: stats.ldm_reg_gbps_per_cpe(chip.clock_ghz, chip.cpes_per_cg as u64),
            bytes: stats.totals.ldm_reg_bytes,
        };
        sw_obs::PerfReport {
            config: self.shape.to_string(),
            plan: self.plan_name.clone(),
            cycles: self.timing.cycles,
            time_ms: secs * 1e3,
            gflops_measured: self.gflops_cg,
            gflops_modeled: self.model.gflops_per_cg,
            efficiency_modeled: self.model.execution_efficiency,
            memory_bound: self.model.memory_bound,
            ldm_high_water_frac: stats.ldm_high_water_frac(chip.ldm_bytes),
            mem,
            reg,
            counters: stats
                .totals
                .named()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .chain([
                    ("pool_handoffs".to_string(), self.pool_handoffs),
                    (
                        "mem_comm_lower_bound_bytes".to_string(),
                        self.comm_lower_bound_bytes,
                    ),
                    (
                        "mem_comm_optimal_permille".to_string(),
                        self.comm_optimal_permille,
                    ),
                ])
                .collect(),
            host: None,
        }
    }
}

/// Runs configurations on the simulated chip.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    pub chip: ChipSpec,
    /// Execution context every simulation this executor launches runs on.
    pub rt: &'static sw_runtime::ExecutionContext,
}

impl Default for Executor {
    fn default() -> Self {
        Self {
            chip: ChipSpec::default(),
            rt: sw_runtime::global(),
        }
    }
}

impl Executor {
    pub fn new() -> Self {
        Self {
            chip: ChipSpec::sw26010(),
            rt: sw_runtime::global(),
        }
    }

    /// Run every simulation on an explicit [`sw_runtime::ExecutionContext`].
    pub fn on_runtime(mut self, rt: &'static sw_runtime::ExecutionContext) -> Self {
        self.rt = rt;
        self
    }

    /// Measure one configuration on one core group (sampled timing).
    pub fn run_config(&self, shape: &ConvShape) -> Result<ConvReport, SwdnnError> {
        let conv = Conv2d::new(*shape)?.on_runtime(self.rt);
        let plan = conv.plan();
        let handoffs_before = self.rt.pool_handoffs();
        let timing = plan.time_full_shape(shape)?;
        let handoffs = self.rt.pool_handoffs() - handoffs_before;
        self.report(
            shape,
            plan.name(),
            plan.kind(),
            plan.blocking(shape),
            timing,
            handoffs,
        )
    }

    /// Measure with a forced plan kind.
    pub fn run_config_with(
        &self,
        shape: &ConvShape,
        kind: PlanKind,
    ) -> Result<ConvReport, SwdnnError> {
        let conv = Conv2d::new(*shape)?.with_plan(kind).on_runtime(self.rt);
        let plan = conv.plan();
        plan.supports(shape)?;
        let handoffs_before = self.rt.pool_handoffs();
        let timing = plan.time_full_shape(shape)?;
        let handoffs = self.rt.pool_handoffs() - handoffs_before;
        self.report(
            shape,
            plan.name(),
            plan.kind(),
            plan.blocking(shape),
            timing,
            handoffs,
        )
    }

    /// Assemble a [`ConvReport`] for an already-timed execution.
    ///
    /// `kind`/`blocking` must be the *executed* plan's values
    /// ([`crate::plans::ConvPlan::blocking`]): deriving them from a fresh
    /// `select_plan` call here would let the model columns describe a plan
    /// other than the one measured whenever the kind was forced or the
    /// instantiated blocking differs from the selector's pick.
    pub(crate) fn report(
        &self,
        shape: &ConvShape,
        name: &str,
        kind: PlanKind,
        blocking: Blocking,
        timing: PlanTiming,
        pool_handoffs: u64,
    ) -> Result<ConvReport, SwdnnError> {
        let model = ConvPerfModel::default().estimate(
            kind,
            blocking,
            shape.batch,
            shape.ni,
            shape.no,
            shape.kc,
        );
        let gflops = timing.gflops(shape, &self.chip);
        let secs = self.chip.cycles_to_seconds(timing.cycles);
        // A degenerate timing (zero cycles) must not poison snapshots with
        // Inf/NaN bandwidth — same guard `obs_report` applies.
        let mbw = if secs > 0.0 {
            timing.stats.totals.dma_get_bytes as f64 / secs / 1e9
        } else {
            0.0
        };
        let comm_bound = mem_comm_lower_bound_bytes(
            &self.chip,
            shape.batch,
            shape.ni,
            shape.no,
            shape.ro,
            shape.co,
            shape.kr,
            shape.kc,
        );
        let comm_permille = comm_optimal_permille(comm_bound, timing.stats.totals.dma_get_bytes);
        Ok(ConvReport {
            shape: *shape,
            plan_name: name.to_string(),
            plan_kind: kind,
            blocking,
            timing,
            gflops_cg: gflops,
            efficiency: gflops / self.chip.peak_gflops_per_cg(),
            mbw_measured: mbw,
            pool_handoffs,
            comm_lower_bound_bytes: comm_bound,
            comm_optimal_permille: comm_permille,
            model,
        })
    }

    /// Chip-level Gflops when the batch is split across `cgs` core groups
    /// (§III-D's partitioning; each CG runs the same plan on 1/cgs of the
    /// output rows).
    pub fn run_multi_cg(
        &self,
        shape: &ConvShape,
        cgs: usize,
    ) -> Result<MultiCgConvReport, SwdnnError> {
        if cgs < 1 || cgs > self.chip.core_groups {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("between 1 and {} core groups", self.chip.core_groups),
                got: format!("{cgs} core groups"),
            });
        }
        if !shape.ro.is_multiple_of(cgs) {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("output rows divisible by {cgs} core groups"),
                got: format!("ro = {}", shape.ro),
            });
        }
        let slice = ConvShape {
            ro: shape.ro / cgs,
            ..*shape
        };
        let conv = Conv2d::new(slice)?.on_runtime(self.rt);
        let plan = conv.plan();
        let timing = plan.time_full_shape(&slice)?;
        let (rep, _) = run_multi_cg_on(self.rt, cgs, |_| (timing.stats, ()));
        let gflops =
            shape.flops() as f64 / (rep.wall_cycles as f64 / (self.chip.clock_ghz * 1e9)) / 1e9;
        Ok(MultiCgConvReport {
            cgs,
            wall_cycles: rep.wall_cycles,
            gflops_chip: gflops,
        })
    }
}

/// Chip-level scaling result.
#[derive(Clone, Copy, Debug)]
pub struct MultiCgConvReport {
    pub cgs: usize,
    pub wall_cycles: u64,
    pub gflops_chip: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ConvShape {
        ConvShape::new(32, 16, 16, 8, 8, 3, 3)
    }

    #[test]
    fn report_has_consistent_numbers() {
        let rep = Executor::new().run_config(&small()).unwrap();
        assert!(rep.gflops_cg > 0.0);
        assert!(rep.efficiency > 0.0 && rep.efficiency < 1.0);
        assert!(rep.mbw_measured > 0.0);
        assert!(rep.model.gflops_per_cg > 0.0);
    }

    #[test]
    fn obs_report_flattens_counters_and_model() {
        let e = Executor::new();
        let rep = e.run_config(&small()).unwrap();
        let obs = rep.obs_report(&e.chip);
        assert_eq!(obs.config, small().to_string());
        assert_eq!(obs.plan, rep.plan_name);
        assert_eq!(obs.cycles, rep.timing.cycles);
        assert_eq!(obs.gflops_measured, rep.gflops_cg);
        assert_eq!(obs.mem.bytes, rep.timing.stats.mem_bytes());
        assert_eq!(obs.reg.bytes, rep.timing.stats.totals.ldm_reg_bytes);
        assert!(obs.reg.bytes > 0, "kernel must charge LDM→REG traffic");
        assert!(obs.mem.measured_gbps > 0.0);
        assert!(obs.reg.measured_gbps > 0.0);
        assert_eq!(obs.mem.required_gbps, rep.model.rbw_mem_ldm);
        assert_eq!(obs.reg.modeled_gbps, rep.model.mbw_ldm_reg);
        assert!(obs.ldm_high_water_frac > 0.0 && obs.ldm_high_water_frac <= 1.0);
        // The counter dump carries every CpeStats field by name, plus the
        // host superstep-tax counter and the two comm-optimality gauges.
        assert_eq!(
            obs.counters.len(),
            rep.timing.stats.totals.named().len() + 3
        );
        assert!(obs.counters.iter().any(|(k, v)| k == "flops" && *v > 0));
        assert!(obs
            .counters
            .iter()
            .any(|(k, v)| k == "mem_comm_lower_bound_bytes" && *v > 0));
        assert!(obs
            .counters
            .iter()
            .any(|(k, v)| k == "mem_comm_optimal_permille" && *v > 0 && *v <= 1000));
        assert!(obs.counters.iter().any(|(k, _)| k == "pool_handoffs"));
        // And the whole thing survives the JSON layer.
        let s = serde_json::to_string(&obs.to_json());
        let back = sw_obs::PerfReport::from_json(&serde_json::from_str(&s).unwrap()).unwrap();
        assert_eq!(back, obs);
    }

    #[test]
    fn forced_plan_report_describes_executed_plan_not_selector_pick() {
        // Regression: report() used to re-run select_plan and attach *its*
        // blocking/model to whatever plan actually executed. With the kind
        // forced to batch-size-aware the selector can disagree, so the
        // model columns described a plan that was never measured.
        let e = Executor::new();
        let shape = small();
        let rep = e.run_config_with(&shape, PlanKind::BatchSizeAware).unwrap();
        assert_eq!(rep.plan_kind, PlanKind::BatchSizeAware);
        assert_eq!(
            rep.blocking.b_b, shape.batch,
            "batch-aware plan streams the whole batch; report must say so"
        );
        let model = ConvPerfModel::default().estimate(
            rep.plan_kind,
            rep.blocking,
            shape.batch,
            shape.ni,
            shape.no,
            shape.kc,
        );
        assert_eq!(rep.model.gflops_per_cg, model.gflops_per_cg);
    }

    #[test]
    fn degenerate_zero_cycle_timing_yields_finite_bandwidth() {
        // Regression: mbw_measured divided by secs without a zero guard, so
        // a zero-cycle timing poisoned the report with Inf/NaN.
        let e = Executor::new();
        let shape = small();
        let timing = PlanTiming {
            cycles: 0,
            stats: sw_sim::CgStats::default(),
            sampled: false,
            modeled: true,
        };
        let rep = e
            .report(
                &shape,
                "degenerate",
                PlanKind::ImageSizeAware,
                Blocking::default(),
                timing,
                0,
            )
            .unwrap();
        assert!(rep.mbw_measured.is_finite());
        assert_eq!(rep.mbw_measured, 0.0);
        assert_eq!(rep.comm_optimal_permille, 0, "no traffic, no gauge");
    }

    #[test]
    fn forced_direct_plan_is_catastrophically_slow() {
        let e = Executor::new();
        let fast = e.run_config(&small()).unwrap();
        let slow = e.run_config_with(&small(), PlanKind::DirectGload).unwrap();
        assert!(
            slow.gflops_cg * 20.0 < fast.gflops_cg,
            "direct {} vs optimized {}",
            slow.gflops_cg,
            fast.gflops_cg
        );
    }

    #[test]
    fn invalid_cg_splits_are_errors_not_panics() {
        let e = Executor::new();
        let shape = small();
        assert!(matches!(
            e.run_multi_cg(&shape, 0),
            Err(SwdnnError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            e.run_multi_cg(&shape, e.chip.core_groups + 1),
            Err(SwdnnError::ShapeMismatch { .. })
        ));
        // ro = 16 does not split across 3 CGs.
        assert!(matches!(
            e.run_multi_cg(&shape, 3),
            Err(SwdnnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn multi_cg_scales_nearly_linearly() {
        let e = Executor::new();
        let shape = small();
        let one = e.run_multi_cg(&shape, 1).unwrap();
        let four = e.run_multi_cg(&shape, 4).unwrap();
        let speedup = one.wall_cycles as f64 / four.wall_cycles as f64;
        assert!(speedup > 3.0, "4-CG speedup {speedup}");
        assert!(four.gflops_chip > one.gflops_chip * 3.0);
    }
}
