//! The executor: run a configuration through the simulator and put the
//! measured numbers next to the model's predictions.
//!
//! This is the engine behind the Table III and Fig. 7/9 regenerations: for
//! each parameter configuration it selects a plan, obtains simulated timing
//! (sampled extrapolation at paper scale), computes achieved Gflops and
//! effective MEM↔LDM bandwidth from the traffic counters, and evaluates the
//! analytic model for comparison.

use crate::conv::Conv2d;
use crate::error::SwdnnError;
use crate::plans::PlanTiming;
use sw_perfmodel::{select_plan, Blocking, ChipSpec, ConvPerfModel, PerfEstimate, PlanKind};
use sw_sim::run_multi_cg;
use sw_tensor::ConvShape;

/// Everything measured and modeled for one configuration.
#[derive(Clone, Debug)]
pub struct ConvReport {
    pub shape: ConvShape,
    pub plan_name: String,
    pub plan_kind: PlanKind,
    pub blocking: Blocking,
    /// Simulated timing on one CG.
    pub timing: PlanTiming,
    /// Measured Gflops on one CG.
    pub gflops_cg: f64,
    /// Fraction of CG peak.
    pub efficiency: f64,
    /// Achieved MEM→LDM bandwidth, GB/s.
    pub mbw_measured: f64,
    /// Analytic model output for the same choice.
    pub model: PerfEstimate,
}

/// Runs configurations on the simulated chip.
#[derive(Clone, Copy, Debug, Default)]
pub struct Executor {
    pub chip: ChipSpec,
}

impl Executor {
    pub fn new() -> Self {
        Self {
            chip: ChipSpec::sw26010(),
        }
    }

    /// Measure one configuration on one core group (sampled timing).
    pub fn run_config(&self, shape: &ConvShape) -> Result<ConvReport, SwdnnError> {
        let conv = Conv2d::new(*shape)?;
        let plan = conv.plan();
        let timing = plan.time_full_shape(shape)?;
        self.report(shape, plan.name(), plan.kind(), timing)
    }

    /// Measure with a forced plan kind.
    pub fn run_config_with(
        &self,
        shape: &ConvShape,
        kind: PlanKind,
    ) -> Result<ConvReport, SwdnnError> {
        let conv = Conv2d::new(*shape)?.with_plan(kind);
        let plan = conv.plan();
        plan.supports(shape)?;
        let timing = plan.time_full_shape(shape)?;
        self.report(shape, plan.name(), plan.kind(), timing)
    }

    fn report(
        &self,
        shape: &ConvShape,
        name: &str,
        kind: PlanKind,
        timing: PlanTiming,
    ) -> Result<ConvReport, SwdnnError> {
        let blocking = select_plan(shape, &self.chip)
            .map(|c| c.blocking)
            .unwrap_or_default();
        let model = ConvPerfModel::default().estimate(
            kind,
            blocking,
            shape.batch,
            shape.ni,
            shape.no,
            shape.kc,
        );
        let gflops = timing.gflops(shape, &self.chip);
        let secs = timing.cycles as f64 / (self.chip.clock_ghz * 1e9);
        let mbw = timing.stats.totals.dma_get_bytes as f64 / secs / 1e9;
        Ok(ConvReport {
            shape: *shape,
            plan_name: name.to_string(),
            plan_kind: kind,
            blocking,
            timing,
            gflops_cg: gflops,
            efficiency: gflops / self.chip.peak_gflops_per_cg(),
            mbw_measured: mbw,
            model,
        })
    }

    /// Chip-level Gflops when the batch is split across `cgs` core groups
    /// (§III-D's partitioning; each CG runs the same plan on 1/cgs of the
    /// output rows).
    pub fn run_multi_cg(
        &self,
        shape: &ConvShape,
        cgs: usize,
    ) -> Result<MultiCgConvReport, SwdnnError> {
        if cgs < 1 || cgs > self.chip.core_groups {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("between 1 and {} core groups", self.chip.core_groups),
                got: format!("{cgs} core groups"),
            });
        }
        if !shape.ro.is_multiple_of(cgs) {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("output rows divisible by {cgs} core groups"),
                got: format!("ro = {}", shape.ro),
            });
        }
        let slice = ConvShape {
            ro: shape.ro / cgs,
            ..*shape
        };
        let conv = Conv2d::new(slice)?;
        let plan = conv.plan();
        let timing = plan.time_full_shape(&slice)?;
        let rep = run_multi_cg(cgs, |_| timing.stats);
        let gflops =
            shape.flops() as f64 / (rep.wall_cycles as f64 / (self.chip.clock_ghz * 1e9)) / 1e9;
        Ok(MultiCgConvReport {
            cgs,
            wall_cycles: rep.wall_cycles,
            gflops_chip: gflops,
        })
    }
}

/// Chip-level scaling result.
#[derive(Clone, Copy, Debug)]
pub struct MultiCgConvReport {
    pub cgs: usize,
    pub wall_cycles: u64,
    pub gflops_chip: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ConvShape {
        ConvShape::new(32, 16, 16, 8, 8, 3, 3)
    }

    #[test]
    fn report_has_consistent_numbers() {
        let rep = Executor::new().run_config(&small()).unwrap();
        assert!(rep.gflops_cg > 0.0);
        assert!(rep.efficiency > 0.0 && rep.efficiency < 1.0);
        assert!(rep.mbw_measured > 0.0);
        assert!(rep.model.gflops_per_cg > 0.0);
    }

    #[test]
    fn forced_direct_plan_is_catastrophically_slow() {
        let e = Executor::new();
        let fast = e.run_config(&small()).unwrap();
        let slow = e.run_config_with(&small(), PlanKind::DirectGload).unwrap();
        assert!(
            slow.gflops_cg * 20.0 < fast.gflops_cg,
            "direct {} vs optimized {}",
            slow.gflops_cg,
            fast.gflops_cg
        );
    }

    #[test]
    fn invalid_cg_splits_are_errors_not_panics() {
        let e = Executor::new();
        let shape = small();
        assert!(matches!(
            e.run_multi_cg(&shape, 0),
            Err(SwdnnError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            e.run_multi_cg(&shape, e.chip.core_groups + 1),
            Err(SwdnnError::ShapeMismatch { .. })
        ));
        // ro = 16 does not split across 3 CGs.
        assert!(matches!(
            e.run_multi_cg(&shape, 3),
            Err(SwdnnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn multi_cg_scales_nearly_linearly() {
        let e = Executor::new();
        let shape = small();
        let one = e.run_multi_cg(&shape, 1).unwrap();
        let four = e.run_multi_cg(&shape, 4).unwrap();
        let speedup = one.wall_cycles as f64 / four.wall_cycles as f64;
        assert!(speedup > 3.0, "4-CG speedup {speedup}");
        assert!(four.gflops_chip > one.gflops_chip * 3.0);
    }
}
