//! The user-facing convolution API with model-driven plan selection (§VII:
//! "we adopt different loop scheduling and blocking strategies according to
//! the performance model for different parameter configurations").

use crate::error::SwdnnError;
use crate::plans::{BatchAwarePlan, ConvPlan, ConvRun, DirectPlan, ImageAwarePlan, ReferencePlan};
use sw_perfmodel::{select_plan, ChipSpec, PlanKind};
use sw_tensor::{conv2d_bwd_data_ref, conv2d_bwd_filter_ref, ConvShape, Tensor4};

/// A configured convolution operator.
#[derive(Clone, Copy, Debug)]
pub struct Conv2d {
    pub shape: ConvShape,
    pub chip: ChipSpec,
    /// Force a specific plan instead of consulting the model.
    pub forced: Option<PlanKind>,
    /// Fault-injection plan threaded into every mesh the plans build.
    pub fault: Option<sw_sim::FaultPlan>,
    /// Execution context every mesh this operator builds runs on.
    pub rt: &'static sw_runtime::ExecutionContext,
}

impl Conv2d {
    pub fn new(shape: ConvShape) -> Result<Self, SwdnnError> {
        if !shape.is_valid() {
            return Err(SwdnnError::ShapeMismatch {
                expected: "positive extents".into(),
                got: format!("{shape}"),
            });
        }
        Ok(Self {
            shape,
            chip: ChipSpec::sw26010(),
            forced: None,
            fault: None,
            rt: sw_runtime::global(),
        })
    }

    /// Run every simulated mesh on an explicit [`sw_runtime::ExecutionContext`]
    /// instead of the process-wide pool.
    pub fn on_runtime(mut self, rt: &'static sw_runtime::ExecutionContext) -> Self {
        self.rt = rt;
        self
    }

    pub fn with_plan(mut self, kind: PlanKind) -> Self {
        self.forced = Some(kind);
        self
    }

    /// Run on an explicit chip (e.g. a degraded 4×4 mesh after masking a
    /// faulty CPE row/column). Plan selection and divisibility checks use
    /// this chip's `mesh_dim`.
    pub fn on_chip(mut self, chip: ChipSpec) -> Self {
        self.chip = chip;
        self
    }

    /// Inject faults into every simulated mesh this operator builds.
    pub fn with_fault(mut self, fault: Option<sw_sim::FaultPlan>) -> Self {
        self.fault = fault;
        self
    }

    /// Resolve the plan this configuration will use.
    ///
    /// Order: forced kind if set; otherwise the performance model's choice,
    /// verified against the plan's own `supports`; otherwise whichever mesh
    /// plan supports the shape; otherwise the host reference plan.
    pub fn plan(&self) -> Box<dyn ConvPlan> {
        if let Some(kind) = self.forced {
            return self.instantiate(kind);
        }
        if let Some(choice) = select_plan(&self.shape, &self.chip) {
            let plan = self.instantiate(choice.kind);
            if plan.supports(&self.shape).is_ok() {
                return plan;
            }
        }
        for kind in [PlanKind::BatchSizeAware, PlanKind::ImageSizeAware] {
            let plan = self.instantiate(kind);
            if plan.supports(&self.shape).is_ok() {
                return plan;
            }
        }
        Box::new(ReferencePlan { chip: self.chip })
    }

    fn instantiate(&self, kind: PlanKind) -> Box<dyn ConvPlan> {
        match kind {
            PlanKind::ImageSizeAware => {
                // Use the model's blocking choice when available.
                let blocking = select_plan(&self.shape, &self.chip)
                    .filter(|c| c.kind == PlanKind::ImageSizeAware)
                    .map(|c| c.blocking)
                    .unwrap_or_else(|| self.fallback_blocking());
                let plan = ImageAwarePlan::new(blocking)
                    .on_chip(self.chip)
                    .with_fault(self.fault)
                    .on_runtime(self.rt);
                if plan.supports(&self.shape).is_ok() {
                    return Box::new(plan);
                }
                // §IV-A fallback: jointly shrink the output-column block
                // and block the Ni dimension until the footprint fits
                // (largest surviving b_co first; b_ni halves down to one
                // mesh row's worth of channels).
                for b_co in [16usize, 8, 4, 2, 1] {
                    if !self.shape.co.is_multiple_of(b_co) {
                        continue;
                    }
                    let base = ImageAwarePlan::new(sw_perfmodel::Blocking { b_b: 32, b_co })
                        .on_chip(self.chip)
                        .with_fault(self.fault)
                        .on_runtime(self.rt);
                    let mut b_ni = self.shape.ni;
                    while b_ni >= 8 {
                        if self.shape.ni.is_multiple_of(b_ni) && b_ni.is_multiple_of(8) {
                            let blocked = base.with_ni_blocking(b_ni);
                            if blocked.supports(&self.shape).is_ok() {
                                return Box::new(blocked);
                            }
                        }
                        b_ni /= 2;
                    }
                }
                Box::new(plan)
            }
            PlanKind::BatchSizeAware => Box::new(
                BatchAwarePlan::auto_on(self.chip, &self.shape)
                    .with_fault(self.fault)
                    .on_runtime(self.rt),
            ),
            PlanKind::DirectGload => Box::new(DirectPlan {
                chip: self.chip,
                rt: self.rt,
            }),
            PlanKind::PatchGemm => Box::new(
                crate::plans::PatchGemmPlan::auto(self.chip, &self.shape)
                    .with_fault(self.fault)
                    .on_runtime(self.rt),
            ),
        }
    }

    fn fallback_blocking(&self) -> sw_perfmodel::Blocking {
        // Largest feasible power-of-two blocks.
        let mut b_b = 32;
        while b_b * 2 <= self.shape.batch && self.shape.batch.is_multiple_of(b_b * 2) && b_b < 128 {
            b_b *= 2;
        }
        let mut b_co = 1;
        while b_co * 2 <= self.shape.co.min(16) && self.shape.co.is_multiple_of(b_co * 2) {
            b_co *= 2;
        }
        sw_perfmodel::Blocking { b_b, b_co }
    }

    /// Forward convolution.
    pub fn forward(
        &self,
        input: &Tensor4<f64>,
        filter: &Tensor4<f64>,
    ) -> Result<ConvRun, SwdnnError> {
        self.check_operands(input, filter)?;
        self.plan().run(&self.shape, input, filter)
    }

    /// Gradient w.r.t. the input, computed host-side with the reference
    /// loops. See [`Conv2d::backward_data_on_chip`] for the simulated-chip
    /// path the paper's training focus implies.
    pub fn backward_data(
        &self,
        d_out: &Tensor4<f64>,
        filter: &Tensor4<f64>,
    ) -> Result<Tensor4<f64>, SwdnnError> {
        if d_out.shape() != self.shape.output_shape() {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("{:?}", self.shape.output_shape()),
                got: format!("{:?}", d_out.shape()),
            });
        }
        Ok(conv2d_bwd_data_ref(self.shape, d_out, filter))
    }

    /// The [`ConvShape`] of the backward-data pass expressed as a forward
    /// convolution: `d_in = conv_valid(pad(d_out, K−1), rot180(Wᵀ))`, i.e.
    /// channels swap roles (`Ni ↔ No`) and the output extent is the input
    /// extent.
    pub fn backward_data_shape(&self) -> ConvShape {
        let s = self.shape;
        ConvShape::new(s.batch, s.no, s.ni, s.ri(), s.ci(), s.kr, s.kc)
    }

    /// Gradient w.r.t. the input, executed **on the simulated SW26010** by
    /// lowering to an equivalent forward convolution (zero-padded output
    /// gradient × flipped-transposed filters) and running it through the
    /// regular plan machinery — the same trick real training frameworks
    /// use so one tuned kernel serves both directions.
    pub fn backward_data_on_chip(
        &self,
        d_out: &Tensor4<f64>,
        filter: &Tensor4<f64>,
    ) -> Result<crate::plans::ConvRun, SwdnnError> {
        if d_out.shape() != self.shape.output_shape() {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("{:?}", self.shape.output_shape()),
                got: format!("{:?}", d_out.shape()),
            });
        }
        let s = self.shape;
        let bwd_shape = self.backward_data_shape();

        // Zero-pad the output gradient by (Kr-1, Kc-1) on every side.
        let mut padded = Tensor4::zeros(bwd_shape.input_shape(), sw_tensor::Layout::Nchw);
        for b in 0..s.batch {
            for no in 0..s.no {
                for r in 0..s.ro {
                    for c in 0..s.co {
                        padded.set(b, no, r + s.kr - 1, c + s.kc - 1, d_out.get(b, no, r, c));
                    }
                }
            }
        }
        // Flip and transpose the filters: W'[ni][no][kr][kc] =
        // W[no][ni][Kr-1-kr][Kc-1-kc].
        let mut flipped = Tensor4::zeros(bwd_shape.filter_shape(), sw_tensor::Layout::Nchw);
        for no in 0..s.no {
            for ni in 0..s.ni {
                for kr in 0..s.kr {
                    for kc in 0..s.kc {
                        flipped.set(
                            ni,
                            no,
                            s.kr - 1 - kr,
                            s.kc - 1 - kc,
                            filter.get(no, ni, kr, kc),
                        );
                    }
                }
            }
        }
        let bwd_conv = Conv2d {
            shape: bwd_shape,
            chip: self.chip,
            forced: self.forced,
            fault: self.fault,
            rt: self.rt,
        };
        bwd_conv.forward(&padded, &flipped)
    }

    /// Gradient w.r.t. the filters, executed **on the simulated SW26010**
    /// by the dedicated [`crate::plans::BwdFilterPlan`] (the pixel-reduced
    /// GEMM rotation). Falls back with `Unsupported` for shapes the mesh
    /// cannot tile; use [`Conv2d::backward_filter`] for the always-correct
    /// host path.
    pub fn backward_filter_on_chip(
        &self,
        input: &Tensor4<f64>,
        d_out: &Tensor4<f64>,
    ) -> Result<(Tensor4<f64>, crate::plans::PlanTiming), SwdnnError> {
        if d_out.shape() != self.shape.output_shape() {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("{:?}", self.shape.output_shape()),
                got: format!("{:?}", d_out.shape()),
            });
        }
        let plan = crate::plans::BwdFilterPlan::auto(&self.shape);
        plan.supports(&self.shape)?;
        plan.run(&self.shape, input, d_out)
    }

    /// Gradient w.r.t. the filters.
    pub fn backward_filter(
        &self,
        input: &Tensor4<f64>,
        d_out: &Tensor4<f64>,
    ) -> Result<Tensor4<f64>, SwdnnError> {
        if d_out.shape() != self.shape.output_shape() {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("{:?}", self.shape.output_shape()),
                got: format!("{:?}", d_out.shape()),
            });
        }
        Ok(conv2d_bwd_filter_ref(self.shape, input, d_out))
    }

    fn check_operands(
        &self,
        input: &Tensor4<f64>,
        filter: &Tensor4<f64>,
    ) -> Result<(), SwdnnError> {
        if input.shape() != self.shape.input_shape() {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("{:?}", self.shape.input_shape()),
                got: format!("{:?}", input.shape()),
            });
        }
        if filter.shape() != self.shape.filter_shape() {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("{:?}", self.shape.filter_shape()),
                got: format!("{:?}", filter.shape()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::init::{lattice_tensor, seeded_tensor};
    use sw_tensor::{conv2d_ref, Layout};

    #[test]
    fn forward_auto_selects_and_matches_reference() {
        let shape = ConvShape::new(16, 8, 8, 4, 8, 3, 3);
        let conv = Conv2d::new(shape).unwrap();
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 51);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 52);
        let run = conv.forward(&input, &filter).unwrap();
        let expect = conv2d_ref(shape, &input, &filter);
        assert_eq!(run.output.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn odd_shapes_fall_back_to_reference_plan() {
        let shape = ConvShape::new(3, 5, 7, 2, 3, 2, 2);
        let conv = Conv2d::new(shape).unwrap();
        assert_eq!(conv.plan().name(), "reference");
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 53);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 54);
        let run = conv.forward(&input, &filter).unwrap();
        assert_eq!(run.output.shape(), shape.output_shape());
    }

    #[test]
    fn forcing_a_plan_is_respected() {
        let shape = ConvShape::new(16, 8, 8, 4, 8, 3, 3);
        let conv = Conv2d::new(shape).unwrap().with_plan(PlanKind::DirectGload);
        assert_eq!(conv.plan().name(), "direct_gload");
    }

    #[test]
    fn operand_shapes_are_checked() {
        let shape = ConvShape::new(16, 8, 8, 4, 8, 3, 3);
        let conv = Conv2d::new(shape).unwrap();
        let wrong = seeded_tensor(sw_tensor::Shape4::new(1, 1, 1, 1), Layout::Nchw, 1);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 2);
        assert!(matches!(
            conv.forward(&wrong, &filter),
            Err(SwdnnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn backward_passes_match_reference() {
        let shape = ConvShape::new(2, 3, 4, 3, 3, 2, 2);
        let conv = Conv2d::new(shape).unwrap();
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 55);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 56);
        let d_out = seeded_tensor(shape.output_shape(), Layout::Nchw, 57);
        let d_in = conv.backward_data(&d_out, &filter).unwrap();
        let d_w = conv.backward_filter(&input, &d_out).unwrap();
        assert_eq!(d_in.shape(), shape.input_shape());
        assert_eq!(d_w.shape(), shape.filter_shape());
    }

    #[test]
    fn paper_scale_config_selects_a_mesh_plan() {
        let shape = ConvShape::new(128, 128, 128, 64, 64, 3, 3);
        let conv = Conv2d::new(shape).unwrap();
        let plan = conv.plan();
        assert_ne!(plan.name(), "reference");
        assert!(plan.supports(&shape).is_ok());
    }
}

#[cfg(test)]
mod ni_blocking_tests {
    use super::*;
    use sw_tensor::Layout;

    #[test]
    fn huge_channel_counts_get_a_blocked_mesh_plan() {
        // 512x512 channels overflow LDM for the plain plans; the selector
        // must fall back to Ni blocking, not to the host reference plan.
        let shape = ConvShape::new(128, 512, 512, 64, 64, 3, 3);
        let conv = Conv2d::new(shape).unwrap();
        let plan = conv.plan();
        assert_eq!(plan.name(), "image_size_aware");
        assert!(plan.supports(&shape).is_ok());
    }

    #[test]
    fn blocked_plan_is_still_correct() {
        let shape = ConvShape::new(32, 64, 8, 2, 4, 2, 2);
        // Force a footprint squeeze by picking a tiny fake LDM via direct
        // plan construction instead: exercised through the public API with
        // an awkward-but-valid shape.
        let conv = Conv2d::new(shape).unwrap();
        let input = sw_tensor::init::lattice_tensor(shape.input_shape(), Layout::Nchw, 81);
        let filter = sw_tensor::init::lattice_tensor(shape.filter_shape(), Layout::Nchw, 82);
        let run = conv.forward(&input, &filter).unwrap();
        let expect = sw_tensor::conv2d_ref(shape, &input, &filter);
        assert_eq!(run.output.max_abs_diff(&expect), 0.0);
    }
}

#[cfg(test)]
mod backward_on_chip_tests {
    use super::*;
    use sw_tensor::init::{lattice_tensor, seeded_tensor};
    use sw_tensor::Layout;

    #[test]
    fn chip_backward_data_matches_reference_exactly() {
        // Mesh-eligible backward shape: Ni<->No swap keeps multiples of 8,
        // and the padded extents stay divisible for the auto plans.
        let shape = ConvShape::new(16, 8, 16, 6, 6, 3, 3);
        let conv = Conv2d::new(shape).unwrap();
        let d_out = lattice_tensor(shape.output_shape(), Layout::Nchw, 201);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 202);
        let expect = conv.backward_data(&d_out, &filter).unwrap();
        let run = conv.backward_data_on_chip(&d_out, &filter).unwrap();
        assert_eq!(run.output.shape(), shape.input_shape());
        assert_eq!(run.output.max_abs_diff(&expect), 0.0);
        assert!(run.timing.cycles > 0, "must actually run on the simulator");
    }

    #[test]
    fn chip_backward_data_random_data_tolerance() {
        let shape = ConvShape::new(8, 16, 8, 4, 6, 2, 3);
        let conv = Conv2d::new(shape).unwrap();
        let d_out = seeded_tensor(shape.output_shape(), Layout::Nchw, 203);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 204);
        let expect = conv.backward_data(&d_out, &filter).unwrap();
        let run = conv.backward_data_on_chip(&d_out, &filter).unwrap();
        assert!(run.output.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn chip_backward_filter_matches_reference() {
        let shape = ConvShape::new(32, 8, 16, 4, 8, 3, 3);
        let conv = Conv2d::new(shape).unwrap();
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 205);
        let d_out = lattice_tensor(shape.output_shape(), Layout::Nchw, 206);
        let expect = conv.backward_filter(&input, &d_out).unwrap();
        let (dw, timing) = conv.backward_filter_on_chip(&input, &d_out).unwrap();
        assert_eq!(dw.max_abs_diff(&expect), 0.0);
        assert!(timing.cycles > 0);
    }

    #[test]
    fn backward_shape_swaps_channels() {
        let shape = ConvShape::new(128, 64, 128, 64, 64, 3, 3);
        let conv = Conv2d::new(shape).unwrap();
        let b = conv.backward_data_shape();
        assert_eq!((b.ni, b.no), (128, 64));
        assert_eq!((b.ro, b.co), (66, 66));
        assert_eq!(b.input_shape().d2, 68);
    }
}
