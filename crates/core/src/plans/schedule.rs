//! The schedule IR: blocking, loop order, layout, and mesh-mapping grain
//! as one composable value, plus the single interpreter that lowers a
//! legal [`Schedule`] onto the existing plan/`regcomm_gemm` machinery.
//!
//! The four hand-written plans are points in a space of decisions the
//! paper makes per shape: how to block (`b_B`, `b_Co`, `b_Ni`, `b_P`),
//! which loop order streams the data (pixel tiles vs. batch columns vs.
//! gathered patches), which physical layout feeds the DMA engine, and at
//! what grain operand tiles map onto the 8×8 mesh. A [`Schedule`] records
//! those decisions explicitly; [`lower_schedule`] turns any *legal*
//! combination into a ready-to-run [`ConvPlan`] by configuring the
//! existing plan structs — so a preset schedule lowers to *exactly* the
//! plan the hand-written path would build, bit-identical output and
//! identical simulated cycles included (see `tests/schedule_presets.rs`).
//!
//! Legality has two layers:
//!
//! 1. **Structural** (shape-independent): the loop order fixes the layout
//!    and mesh grain it is implemented against, and requires its own
//!    blocking fields to be non-zero. A schedule claiming, say, a
//!    batch-streamed loop over the image-aware layout describes a kernel
//!    nobody wrote; it is rejected before any lowering.
//! 2. **Per-shape**: the lowered plan's own `supports` check
//!    (divisibility, LDM budget). Both layers surface as
//!    [`SwdnnError::PlanRejected`] carrying the human-readable reason, so
//!    a search (or a serving fallback chain) can log *why* a point in the
//!    space is infeasible instead of silently degrading.

use super::patch_gemm::PatchGemmPlan;
use super::{BatchAwarePlan, ConvPlan, DirectPlan, ImageAwarePlan, ReferencePlan};
use crate::error::SwdnnError;
use sw_perfmodel::{Blocking, ChipSpec, PlanKind};
use sw_tensor::{ConvShape, Layout};

/// The loop order / mapping family a schedule streams data in.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LoopOrder {
    /// Algorithm 1: tile `(b_B, b_Co)` output blocks, rotate filters.
    PixelTiled,
    /// Algorithm 2: stream input pixel columns across the whole batch.
    ColumnStreamed,
    /// The pathological per-element `gload` nest (Fig. 2 ablation).
    DirectNested,
    /// Host MPE reference loops (always legal, never fast).
    HostReference,
    /// Per-tap GEMM over gathered output-pixel patches — the general
    /// geometry (stride/dilation/padding) mapping.
    PatchGathered,
}

/// The grain at which operand tiles map onto the CPE mesh.
///
/// Today each [`LoopOrder`] is implemented against exactly one grain;
/// the axis exists in the IR so multi-grained mappings (MG3MConv-style)
/// can be added as new legal combinations rather than new plan monoliths.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MeshGrain {
    /// Whole batch-quads per mesh pixel chunk (image-size-aware).
    BatchQuad,
    /// `B/8` batch slices per mesh column (batch-size-aware).
    BatchSlice,
    /// One element per `gload` (direct mapping).
    Element,
    /// No mesh at all: the host MPE runs the loops.
    Host,
    /// `b_P/8` gathered output pixels per mesh column (patch GEMM).
    PixelBlock,
}

/// One point in the schedule space. `Copy + Eq + Hash` so it can key
/// caches directly (`PlanCache` stores searched winners under
/// `(shape, schedule)`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Schedule {
    /// The plan family this schedule lowers into (redundant with `order`
    /// for the presets, but kept explicit: a structural check rejects
    /// combinations where the two disagree).
    pub kind: PlanKind,
    pub order: LoopOrder,
    /// Physical operand layout the loop order is implemented against.
    pub layout: Layout,
    pub grain: MeshGrain,
    /// Batch block `b_B` (pixel-tiled; `0` = stream the whole batch).
    pub b_b: usize,
    /// Output-column block `b_Co`.
    pub b_co: usize,
    /// Optional input-channel block `b_Ni` (pixel-tiled §IV-A fallback).
    pub b_ni: Option<usize>,
    /// Gathered-pixel block `b_P` (patch-gathered only).
    pub b_p: usize,
    /// §VI software-pipelined inner kernel (vs. the naive one).
    pub reordered_kernel: bool,
    /// Double-buffer DMA against compute (§IV-A).
    pub double_buffer: bool,
}

impl Schedule {
    /// Algorithm 1 preset: lowers to [`ImageAwarePlan`] with `(b_b, b_co)`.
    pub const fn image_aware(b_b: usize, b_co: usize) -> Self {
        Self {
            kind: PlanKind::ImageSizeAware,
            order: LoopOrder::PixelTiled,
            layout: Layout::ImageAware,
            grain: MeshGrain::BatchQuad,
            b_b,
            b_co,
            b_ni: None,
            b_p: 0,
            reordered_kernel: true,
            double_buffer: true,
        }
    }

    /// [`Schedule::image_aware`] with the §IV-A input-channel blocking.
    pub const fn image_aware_ni(b_b: usize, b_co: usize, b_ni: usize) -> Self {
        let mut s = Self::image_aware(b_b, b_co);
        s.b_ni = Some(b_ni);
        s
    }

    /// Algorithm 2 preset: lowers to [`BatchAwarePlan`] with `b_co`.
    pub const fn batch_aware(b_co: usize) -> Self {
        Self {
            kind: PlanKind::BatchSizeAware,
            order: LoopOrder::ColumnStreamed,
            layout: Layout::BatchAware,
            grain: MeshGrain::BatchSlice,
            b_b: 0, // streams the whole batch
            b_co,
            b_ni: None,
            b_p: 0,
            reordered_kernel: true,
            double_buffer: true,
        }
    }

    /// Direct-`gload` preset: lowers to [`DirectPlan`].
    pub const fn direct() -> Self {
        Self {
            kind: PlanKind::DirectGload,
            order: LoopOrder::DirectNested,
            layout: Layout::Nchw,
            grain: MeshGrain::Element,
            b_b: 0,
            b_co: 0,
            b_ni: None,
            b_p: 0,
            reordered_kernel: false,
            double_buffer: false,
        }
    }

    /// Host-reference preset: lowers to [`ReferencePlan`] (which reports
    /// itself as `ImageSizeAware`, so the preset does too).
    pub const fn reference() -> Self {
        Self {
            kind: PlanKind::ImageSizeAware,
            order: LoopOrder::HostReference,
            layout: Layout::Nchw,
            grain: MeshGrain::Host,
            b_b: 0,
            b_co: 0,
            b_ni: None,
            b_p: 0,
            reordered_kernel: false,
            double_buffer: false,
        }
    }

    /// Patch-GEMM preset: lowers to [`PatchGemmPlan`] with pixel block
    /// `b_p`. The only family whose lowering accepts stride/dilation.
    pub const fn patch_gemm(b_p: usize) -> Self {
        Self {
            kind: PlanKind::PatchGemm,
            order: LoopOrder::PatchGathered,
            layout: Layout::Nchw,
            grain: MeshGrain::PixelBlock,
            b_b: 0,
            b_co: 0,
            b_ni: None,
            b_p,
            reordered_kernel: true,
            double_buffer: false,
        }
    }

    /// The `Blocking` the perf model prices this schedule with.
    pub fn model_blocking(&self, shape: &ConvShape) -> Blocking {
        match self.order {
            LoopOrder::PixelTiled => Blocking {
                b_b: self.b_b,
                b_co: self.b_co,
            },
            // Algorithm 2 streams the whole batch and holds a b_co window.
            LoopOrder::ColumnStreamed => Blocking {
                b_b: shape.batch,
                b_co: self.b_co,
            },
            // b_p rides in the model's b_b slot (see ConvPerfModel docs).
            LoopOrder::PatchGathered => Blocking {
                b_b: self.b_p,
                b_co: 1,
            },
            LoopOrder::DirectNested | LoopOrder::HostReference => Blocking::default(),
        }
    }

    /// Short human-readable identity for logs and tune reports.
    pub fn describe(&self) -> String {
        match self.order {
            LoopOrder::PixelTiled => match self.b_ni {
                Some(b_ni) => format!(
                    "image_size_aware b_b={} b_co={} b_ni={b_ni}",
                    self.b_b, self.b_co
                ),
                None => format!("image_size_aware b_b={} b_co={}", self.b_b, self.b_co),
            },
            LoopOrder::ColumnStreamed => format!("batch_size_aware b_co={}", self.b_co),
            LoopOrder::DirectNested => "direct_gload".into(),
            LoopOrder::HostReference => "reference".into(),
            LoopOrder::PatchGathered => format!("patch_gemm b_p={}", self.b_p),
        }
    }

    /// The structural layer of legality: does this combination of
    /// decisions describe a kernel that exists? Returns the reason when
    /// it does not (shape-independent — no `ConvShape` needed).
    pub fn structural_error(&self) -> Option<String> {
        let expect = |kind: PlanKind, layout: Layout, grain: MeshGrain| -> Option<String> {
            if self.kind != kind {
                return Some(format!(
                    "loop order {:?} lowers to {kind:?}, not {:?}",
                    self.order, self.kind
                ));
            }
            if self.layout != layout {
                return Some(format!(
                    "loop order {:?} is implemented against layout {layout:?}, not {:?}",
                    self.order, self.layout
                ));
            }
            if self.grain != grain {
                return Some(format!(
                    "loop order {:?} maps at grain {grain:?}, not {:?}",
                    self.order, self.grain
                ));
            }
            None
        };
        match self.order {
            LoopOrder::PixelTiled => expect(
                PlanKind::ImageSizeAware,
                Layout::ImageAware,
                MeshGrain::BatchQuad,
            )
            .or_else(|| {
                (self.b_b == 0 || self.b_co == 0)
                    .then(|| "pixel-tiled order needs b_b > 0 and b_co > 0".into())
            }),
            LoopOrder::ColumnStreamed => expect(
                PlanKind::BatchSizeAware,
                Layout::BatchAware,
                MeshGrain::BatchSlice,
            )
            .or_else(|| (self.b_co == 0).then(|| "column-streamed order needs b_co > 0".into())),
            LoopOrder::DirectNested => {
                expect(PlanKind::DirectGload, Layout::Nchw, MeshGrain::Element)
            }
            // ReferencePlan reports ImageSizeAware; the preset mirrors it.
            LoopOrder::HostReference => {
                expect(PlanKind::ImageSizeAware, Layout::Nchw, MeshGrain::Host)
            }
            LoopOrder::PatchGathered => {
                expect(PlanKind::PatchGemm, Layout::Nchw, MeshGrain::PixelBlock)
                    .or_else(|| (self.b_p == 0).then(|| "patch order needs b_p > 0".into()))
            }
        }
    }

    /// Full legality for `shape`: structural check, then the lowered
    /// plan's own `supports`. Errors arrive as
    /// [`SwdnnError::PlanRejected`] with the concrete reason.
    pub fn check(&self, shape: &ConvShape, ctx: &LowerCtx) -> Result<(), SwdnnError> {
        lower_schedule(self, shape, ctx).map(|_| ())
    }
}

/// Everything a lowering needs besides the schedule itself: which chip
/// description to target, fault injection, and the execution context the
/// simulated mesh runs on.
#[derive(Clone, Copy, Debug)]
pub struct LowerCtx {
    pub chip: ChipSpec,
    pub fault: Option<sw_sim::FaultPlan>,
    pub rt: &'static sw_runtime::ExecutionContext,
}

impl Default for LowerCtx {
    fn default() -> Self {
        Self {
            chip: ChipSpec::sw26010(),
            fault: None,
            rt: sw_runtime::global(),
        }
    }
}

impl LowerCtx {
    pub fn on_chip(chip: ChipSpec) -> Self {
        Self {
            chip,
            ..Self::default()
        }
    }
}

/// The interpreter: lower a legal `Schedule` for `shape` into a
/// ready-to-run plan on the existing mesh machinery.
///
/// Presets lower to exactly the plan struct the hand-written path
/// constructs, so outputs and simulated cycles are identical by
/// construction. An illegal schedule (structurally, or rejected by the
/// plan's `supports`) returns [`SwdnnError::PlanRejected`] naming the
/// reason.
pub fn lower_schedule(
    s: &Schedule,
    shape: &ConvShape,
    ctx: &LowerCtx,
) -> Result<Box<dyn ConvPlan>, SwdnnError> {
    let reject = |reason: String| SwdnnError::PlanRejected {
        shape: *shape,
        reason,
    };
    if let Some(reason) = s.structural_error() {
        return Err(reject(reason));
    }
    let plan: Box<dyn ConvPlan> = match s.order {
        LoopOrder::PixelTiled => {
            let mut p = ImageAwarePlan::new(Blocking {
                b_b: s.b_b,
                b_co: s.b_co,
            })
            .on_chip(ctx.chip)
            .with_fault(ctx.fault)
            .on_runtime(ctx.rt);
            p.b_ni = s.b_ni;
            p.reordered_kernel = s.reordered_kernel;
            p.double_buffer = s.double_buffer;
            Box::new(p)
        }
        LoopOrder::ColumnStreamed => {
            let mut p = BatchAwarePlan::new(s.b_co)
                .on_chip(ctx.chip)
                .with_fault(ctx.fault)
                .on_runtime(ctx.rt);
            p.reordered_kernel = s.reordered_kernel;
            Box::new(p)
        }
        LoopOrder::DirectNested => Box::new(DirectPlan {
            chip: ctx.chip,
            rt: ctx.rt,
        }),
        LoopOrder::HostReference => Box::new(ReferencePlan { chip: ctx.chip }),
        LoopOrder::PatchGathered => Box::new(
            PatchGemmPlan::new(s.b_p)
                .on_chip(ctx.chip)
                .with_fault(ctx.fault)
                .on_runtime(ctx.rt)
                .with_reordered(s.reordered_kernel),
        ),
    };
    // Per-shape legality: the plan's own divisibility/LDM checks, mapped
    // into the structured rejection so callers see one error class.
    plan.supports(shape).map_err(|e| match e {
        SwdnnError::Unsupported { reason, .. } => reject(reason),
        other => other,
    })?;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::new(32, 16, 16, 4, 8, 3, 3)
    }

    #[test]
    fn presets_lower_to_their_named_plans() {
        let ctx = LowerCtx::default();
        let s = shape();
        let cases = [
            (Schedule::image_aware(32, 4), "image_size_aware"),
            (Schedule::batch_aware(4), "batch_size_aware"),
            (Schedule::direct(), "direct_gload"),
            (Schedule::reference(), "reference"),
            (Schedule::patch_gemm(32), "patch_gemm"),
        ];
        for (sched, name) in cases {
            let plan = lower_schedule(&sched, &s, &ctx).unwrap();
            assert_eq!(plan.name(), name);
            assert_eq!(plan.kind(), sched.kind);
        }
    }

    #[test]
    fn lowered_blocking_matches_the_schedule() {
        let ctx = LowerCtx::default();
        let s = shape();
        let plan = lower_schedule(&Schedule::image_aware(32, 4), &s, &ctx).unwrap();
        assert_eq!(plan.blocking(&s), Blocking { b_b: 32, b_co: 4 });
        let plan = lower_schedule(&Schedule::batch_aware(2), &s, &ctx).unwrap();
        assert_eq!(
            plan.blocking(&s),
            Blocking {
                b_b: s.batch,
                b_co: 2
            }
        );
    }

    #[test]
    fn structurally_inconsistent_schedules_are_rejected() {
        let ctx = LowerCtx::default();
        let s = shape();
        // A batch-streamed loop cannot run over the image-aware layout.
        let mut bad = Schedule::batch_aware(4);
        bad.layout = Layout::ImageAware;
        match lower_schedule(&bad, &s, &ctx).map(|_| ()) {
            Err(SwdnnError::PlanRejected { reason, .. }) => {
                assert!(reason.contains("layout"), "{reason}")
            }
            other => panic!("expected PlanRejected, got {other:?}"),
        }
        // Kind disagreeing with the loop order is a lie about the lowering.
        let mut bad = Schedule::image_aware(32, 4);
        bad.kind = PlanKind::BatchSizeAware;
        assert!(matches!(
            lower_schedule(&bad, &s, &ctx).map(|_| ()),
            Err(SwdnnError::PlanRejected { .. })
        ));
        // Zero blocking never describes a kernel.
        let bad = Schedule::image_aware(0, 4);
        assert!(matches!(
            lower_schedule(&bad, &s, &ctx).map(|_| ()),
            Err(SwdnnError::PlanRejected { .. })
        ));
    }

    #[test]
    fn per_shape_illegality_surfaces_as_plan_rejected_with_reason() {
        let ctx = LowerCtx::default();
        // Ni = 7 is not a multiple of the mesh dim.
        let s = ConvShape::new(32, 7, 16, 4, 8, 3, 3);
        match Schedule::image_aware(32, 4).check(&s, &ctx) {
            Err(SwdnnError::PlanRejected { shape, reason }) => {
                assert_eq!(shape, s);
                assert!(reason.contains("multiple"), "{reason}");
            }
            other => panic!("expected PlanRejected, got {other:?}"),
        }
    }

    #[test]
    fn schedules_are_hashable_cache_keys() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Schedule::image_aware(32, 4));
        set.insert(Schedule::image_aware(32, 8));
        set.insert(Schedule::batch_aware(4));
        assert_eq!(set.len(), 3);
        assert!(set.contains(&Schedule::image_aware(32, 4)));
    }
}
