//! Host fallback plan.
//!
//! Shapes the mesh plans cannot map (channel counts not divisible by 8,
//! tiny batches, degenerate images) still deserve a correct answer: this
//! plan computes the convolution with the naive reference loops on the
//! host and *models* its SW26010 timing with the analytic performance
//! model (there is nothing interesting to simulate — a real swDNN would
//! run such shapes on the MPE).

use super::{ConvPlan, ConvRun, PlanTiming};
use crate::error::SwdnnError;
use crate::plans::PlanKind;
use sw_perfmodel::{Blocking, ChipSpec, ConvPerfModel};
use sw_sim::{CgStats, CpeStats};
use sw_tensor::{conv2d_ref, ConvShape, Tensor4};

/// Always-correct host execution with modeled timing.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReferencePlan {
    pub chip: ChipSpec,
}

impl ConvPlan for ReferencePlan {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn kind(&self) -> PlanKind {
        // Reported under the image-size-aware family: the model's estimate
        // for a generic blocked execution.
        PlanKind::ImageSizeAware
    }

    fn supports(&self, shape: &ConvShape) -> Result<(), SwdnnError> {
        if !shape.is_valid() {
            return Err(SwdnnError::Unsupported {
                plan: "reference",
                shape: *shape,
                reason: "degenerate shape".into(),
            });
        }
        Ok(())
    }

    fn run(
        &self,
        shape: &ConvShape,
        input: &Tensor4<f64>,
        filter: &Tensor4<f64>,
    ) -> Result<ConvRun, SwdnnError> {
        self.supports(shape)?;
        let output = conv2d_ref(*shape, input, filter);
        Ok(ConvRun {
            output,
            timing: self.modeled_timing(shape),
        })
    }

    fn time_full_shape(&self, shape: &ConvShape) -> Result<PlanTiming, SwdnnError> {
        Ok(self.modeled_timing(shape))
    }
}

impl ReferencePlan {
    fn modeled_timing(&self, shape: &ConvShape) -> PlanTiming {
        let est = ConvPerfModel::default().estimate(
            PlanKind::ImageSizeAware,
            Blocking::default(),
            shape.batch.max(1),
            shape.ni.max(8),
            shape.no.max(8),
            shape.kc,
        );
        let secs = shape.flops() as f64 / (est.gflops_per_cg.max(1e-9) * 1e9);
        let cycles = (secs * self.chip.clock_ghz * 1e9).ceil() as u64;
        PlanTiming {
            cycles,
            stats: CgStats {
                cycles,
                totals: CpeStats {
                    flops: shape.flops(),
                    ..Default::default()
                },
                ..Default::default()
            },
            sampled: false,
            modeled: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::init::seeded_tensor;
    use sw_tensor::Layout;

    #[test]
    fn runs_any_valid_shape() {
        // Deliberately awkward: Ni=5, No=3, batch=1.
        let shape = ConvShape::new(1, 5, 3, 2, 2, 2, 2);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 41);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 42);
        let run = ReferencePlan::default()
            .run(&shape, &input, &filter)
            .unwrap();
        assert!(run.timing.modeled);
        assert!(run.timing.cycles > 0);
        let expect = sw_tensor::conv2d_ref(shape, &input, &filter);
        assert_eq!(run.output.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(ReferencePlan::default()
            .supports(&ConvShape::new(0, 1, 1, 1, 1, 1, 1))
            .is_err());
    }
}
