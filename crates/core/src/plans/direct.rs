//! The direct memory-access plan — the pathological mapping of Fig. 2's
//! middle column, kept as an executable ablation.
//!
//! Each CPE computes an interleaved 1/64 share of the output pixels,
//! reading every operand element straight from main memory with `gload`
//! (8 GB/s aggregate for the whole CG, no LDM staging, no data sharing,
//! scalar arithmetic). The paper's model predicts
//! `(8 / 139.2)² ≈ 0.32 %` of peak; simulating this plan shows the same
//! collapse and anchors the "direct memory access" column of the Fig. 2
//! reproduction.

use super::{ConvPlan, ConvRun, PlanTiming};
use crate::error::SwdnnError;
use crate::plans::PlanKind;
use sw_perfmodel::ChipSpec;
use sw_sim::{CgStats, CpeStats, LdmBuf, Mesh};
use sw_tensor::{ConvShape, Layout, Tensor4};

/// Cycles one scalar 8-byte `gload` costs a CPE when all 64 CPEs contend
/// for the 8 GB/s interface: `8 B / (8/64 GB/s) · 1.45 GHz = 92.8`.
pub fn gload_cycles(chip: &ChipSpec) -> u64 {
    let share = chip.gload_gbps / chip.cpes_per_cg as f64;
    (8.0 / (share * 1e9) * chip.clock_ghz * 1e9).ceil() as u64
}

/// The direct-gload convolution.
#[derive(Clone, Copy, Debug)]
pub struct DirectPlan {
    pub chip: ChipSpec,
    /// Execution context the simulated mesh runs on.
    pub rt: &'static sw_runtime::ExecutionContext,
}

impl Default for DirectPlan {
    fn default() -> Self {
        Self {
            chip: ChipSpec::default(),
            rt: sw_runtime::global(),
        }
    }
}

impl DirectPlan {
    /// Analytic cycle count. The plan is perfectly regular, so (up to the
    /// final barrier) the closed form matches the simulated count —
    /// asserted in the tests.
    pub fn analytic_cycles(&self, shape: &ConvShape) -> u64 {
        let outputs = shape.batch * shape.no * shape.ro * shape.co;
        let per_cpe_outputs = outputs.div_ceil(self.chip.cpes_per_cg);
        let g = gload_cycles(&self.chip);
        let inner = shape.ni * shape.kr * shape.kc;
        // 2 gloads (input + filter element) and 1 scalar fma per inner step,
        // plus one gstore per output.
        per_cpe_outputs as u64 * (inner as u64 * (2 * g + 1) + g)
    }
}

impl ConvPlan for DirectPlan {
    fn name(&self) -> &'static str {
        "direct_gload"
    }

    fn kind(&self) -> PlanKind {
        PlanKind::DirectGload
    }

    fn supports(&self, shape: &ConvShape) -> Result<(), SwdnnError> {
        if !shape.is_valid() {
            return Err(SwdnnError::Unsupported {
                plan: "direct_gload",
                shape: *shape,
                reason: "degenerate shape".into(),
            });
        }
        Ok(())
    }

    fn run(
        &self,
        shape: &ConvShape,
        input: &Tensor4<f64>,
        filter: &Tensor4<f64>,
    ) -> Result<ConvRun, SwdnnError> {
        self.supports(shape)?;
        let input = input.to_layout(Layout::Nchw);
        let filter = filter.to_layout(Layout::Nchw);
        let in_data = input.data();
        let w_data = filter.data();
        let (b_n, no, ro, co, ni, kr_n, kc_n) = (
            shape.batch,
            shape.no,
            shape.ro,
            shape.co,
            shape.ni,
            shape.kr,
            shape.kc,
        );
        let (ri, ci) = (shape.ri(), shape.ci());
        let outputs = b_n * no * ro * co;
        let g = gload_cycles(&self.chip);

        let mut output = Tensor4::zeros(shape.output_shape(), Layout::Nchw);
        let mut mesh: Mesh<LdmBuf> =
            Mesh::new_on(self.rt, self.chip, |_, _| LdmBuf { offset: 0, len: 0 });
        mesh.superstep(|ctx, buf| {
            *buf = ctx.ldm_alloc(1)?;
            Ok(())
        })?;
        mesh.superstep(|ctx, buf| {
            let mut idx = ctx.id();
            while idx < outputs {
                let c = idx % co;
                let r = (idx / co) % ro;
                let n_o = (idx / (co * ro)) % no;
                let b = idx / (co * ro * no);
                let mut acc = 0.0;
                for n_i in 0..ni {
                    for kr in 0..kr_n {
                        for kc in 0..kc_n {
                            let iv = in_data[((b * ni + n_i) * ri + r + kr) * ci + c + kc];
                            let wv = w_data[((n_o * ni + n_i) * kr_n + kr) * kc_n + kc];
                            acc += iv * wv;
                        }
                    }
                }
                ctx.ldm_data_mut()[buf.offset] = acc;
                // gstore: one 8-byte scalar store at gload cost; the put is
                // charged through charge_compute so the analytic formula
                // stays exact, and logged for functional correctness.
                let h = ctx.dma_put(*buf, 0, idx, 1)?;
                let _ = h; // timing folded into the closed form below
                let inner = (ni * kr_n * kc_n) as u64;
                ctx.charge_compute(inner * (2 * g + 1) + g);
                ctx.add_flops(2 * inner);
                idx += 64;
            }
            Ok(())
        })?;
        mesh.drain_puts(output.data_mut())?;

        let stats = mesh.stats();
        Ok(ConvRun {
            output,
            timing: PlanTiming {
                cycles: stats.cycles,
                stats,
                sampled: false,
                modeled: false,
            },
        })
    }

    fn time_full_shape(&self, shape: &ConvShape) -> Result<PlanTiming, SwdnnError> {
        // The plan is perfectly regular: use the closed form (validated
        // against full simulation on small shapes in the tests).
        let cycles = self.analytic_cycles(shape);
        let stats = CgStats {
            cycles,
            totals: CpeStats {
                flops: shape.flops(),
                dma_get_bytes: 16
                    * (shape.batch * shape.no * shape.ro * shape.co) as u64
                    * (shape.ni * shape.kr * shape.kc) as u64,
                ..Default::default()
            },
            ..Default::default()
        };
        Ok(PlanTiming {
            cycles,
            stats,
            sampled: true,
            modeled: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_perfmodel::{Blocking, ConvPerfModel};
    use sw_tensor::conv2d_ref;
    use sw_tensor::init::seeded_tensor;

    #[test]
    fn gload_cost_is_about_93_cycles() {
        assert_eq!(gload_cycles(&ChipSpec::sw26010()), 93);
    }

    #[test]
    fn matches_reference() {
        let shape = ConvShape::new(4, 3, 5, 4, 6, 3, 2);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 31);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 32);
        let expect = conv2d_ref(shape, &input, &filter);
        let run = DirectPlan::default().run(&shape, &input, &filter).unwrap();
        assert_eq!(
            run.output.max_abs_diff(&expect),
            0.0,
            "same summation order => exact"
        );
    }

    #[test]
    fn analytic_cycles_match_simulation() {
        let shape = ConvShape::new(8, 4, 8, 4, 8, 3, 3);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 33);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 34);
        let plan = DirectPlan::default();
        let run = plan.run(&shape, &input, &filter).unwrap();
        let analytic = plan.analytic_cycles(&shape);
        // The simulation adds only the fixed superstep barriers.
        let slack = run.timing.cycles - analytic;
        assert!(
            slack <= 64,
            "analytic {analytic} vs simulated {}",
            run.timing.cycles
        );
    }

    #[test]
    fn efficiency_collapses_to_fraction_of_percent() {
        // The Fig. 2 claim: ~0.32% of peak.
        let chip = ChipSpec::sw26010();
        let plan = DirectPlan::default();
        let shape = ConvShape::new(128, 128, 128, 64, 64, 3, 3);
        let t = plan.time_full_shape(&shape).unwrap();
        let eff = t.efficiency(&shape, &chip);
        assert!(eff < 0.005, "direct plan must be <0.5% of peak, got {eff}");
        // And the analytic model agrees on the order of magnitude.
        let est = ConvPerfModel::default().estimate(
            PlanKind::DirectGload,
            Blocking::default(),
            128,
            128,
            128,
            3,
        );
        let model_eff = est.gflops_per_cg / chip.peak_gflops_per_cg();
        assert!((eff / model_eff) < 3.0 && (model_eff / eff) < 3.0);
    }
}
