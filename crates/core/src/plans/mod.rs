//! Convolution plans: the paper's mappings of the convolution kernel onto
//! one SW26010 core group.
//!
//! All mesh plans share the same skeleton:
//!
//! 1. distribute operand tiles over the 8×8 CPE mesh with **no duplicated
//!    data** (§V-A), using DMA block sizes the Table II curve rewards;
//! 2. run the **register-communication GEMM** ([`gemm_mesh`]): 8 rotation
//!    rounds in which one mesh column broadcasts filter blocks along rows
//!    and one mesh row broadcasts image blocks along columns (Fig. 3);
//! 3. price the per-CPE compute with the software-pipelined inner kernel of
//!    §VI (`17·(Ni/8) + 4` cycles per 4×16 register tile);
//! 4. double-buffer DMA against compute (§IV-A).
//!
//! Every plan computes real `f64` results, checked against the reference
//! convolution in the test suites.

pub mod batch_aware;
pub mod bwd_filter;
pub mod direct;
pub mod gemm_mesh;
pub mod image_aware;
pub mod patch_gemm;
pub mod reference;
pub mod schedule;

pub use batch_aware::BatchAwarePlan;
pub use bwd_filter::BwdFilterPlan;
pub use direct::DirectPlan;
pub use image_aware::ImageAwarePlan;
pub use patch_gemm::PatchGemmPlan;
pub use reference::ReferencePlan;
pub use schedule::{lower_schedule, LoopOrder, LowerCtx, MeshGrain, Schedule};

use crate::error::SwdnnError;
use sw_perfmodel::{Blocking, ChipSpec, PlanKind};
use sw_sim::CgStats;
use sw_tensor::{ConvShape, Tensor4};

/// Timing of one plan execution on one core group.
#[derive(Clone, Copy, Debug)]
pub struct PlanTiming {
    /// Simulated wall cycles on the CG.
    pub cycles: u64,
    /// Aggregate counters.
    pub stats: CgStats,
    /// True when the cycles were extrapolated from sampled outer iterations
    /// rather than a full simulation.
    pub sampled: bool,
    /// True when timing comes from the analytic model only (reference plan).
    pub modeled: bool,
}

impl PlanTiming {
    /// Attained Gflops given the convolution's true flop count.
    pub fn gflops(&self, shape: &ConvShape, chip: &ChipSpec) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let secs = self.cycles as f64 / (chip.clock_ghz * 1e9);
        shape.flops() as f64 / secs / 1e9
    }

    /// Fraction of one CG's peak attained.
    pub fn efficiency(&self, shape: &ConvShape, chip: &ChipSpec) -> f64 {
        self.gflops(shape, chip) / chip.peak_gflops_per_cg()
    }
}

/// Result of running a plan: the output tensor plus timing.
#[derive(Clone, Debug)]
pub struct ConvRun {
    pub output: Tensor4<f64>,
    pub timing: PlanTiming,
}

/// A convolution execution strategy.
pub trait ConvPlan {
    fn name(&self) -> &'static str;
    fn kind(&self) -> PlanKind;

    /// The LDM blocking this plan *actually executes* `shape` with.
    ///
    /// Reports must derive their model columns from this, not from a fresh
    /// `select_plan` call: when the plan kind was forced (or the selector
    /// would pick a different blocking than the instantiated plan), the
    /// two can disagree and the report would describe a plan that was
    /// never measured. Plans without a meaningful blocking (direct,
    /// reference) keep the model's default.
    fn blocking(&self, _shape: &ConvShape) -> Blocking {
        Blocking::default()
    }

    /// Can this plan run `shape` at all (divisibility + LDM budget)?
    fn supports(&self, shape: &ConvShape) -> Result<(), SwdnnError>;

    /// Execute the full convolution (real arithmetic, full timing).
    fn run(
        &self,
        shape: &ConvShape,
        input: &Tensor4<f64>,
        filter: &Tensor4<f64>,
    ) -> Result<ConvRun, SwdnnError>;

    /// Estimate full-shape timing by simulating a small number of outer
    /// iterations and extrapolating linearly (see [`extrapolate`]).
    ///
    /// The default implementation runs the plan in full — plans whose cost
    /// is linear in an outer trip count override this.
    fn time_full_shape(&self, shape: &ConvShape) -> Result<PlanTiming, SwdnnError> {
        let input = sw_tensor::init::seeded_tensor(shape.input_shape(), sw_tensor::Layout::Nchw, 1);
        let filter =
            sw_tensor::init::seeded_tensor(shape.filter_shape(), sw_tensor::Layout::Nchw, 2);
        Ok(self.run(shape, &input, &filter)?.timing)
    }
}

/// Linear extrapolation of timing from two sampled runs.
///
/// A plan's cost is `a + b·N` in the outer trip count `N`; given
/// measurements at `n1 < n2` outer iterations, recover `(a, b)` and predict
/// the full count. Counters extrapolate the same way.
pub fn extrapolate(t1: &PlanTiming, n1: u64, t2: &PlanTiming, n2: u64, n_full: u64) -> PlanTiming {
    assert!(n2 > n1 && n1 > 0, "need two distinct positive sample sizes");
    let per_iter = (t2.cycles.saturating_sub(t1.cycles)) / (n2 - n1);
    let setup = t1.cycles.saturating_sub(per_iter * n1);
    let cycles = setup + per_iter * n_full;

    let lerp_u64 = |a: u64, b: u64| -> u64 {
        let per = (b.saturating_sub(a)) / (n2 - n1);
        let base = a.saturating_sub(per * n1);
        base + per * n_full
    };
    // `combine` iterates the complete counter field list, so counters added
    // to CpeStats extrapolate without this function changing.
    let mut stats = t1.stats;
    stats.cycles = cycles;
    stats.totals = t1.stats.totals.combine(&t2.stats.totals, lerp_u64);
    stats.ldm_high_water_doubles = t1
        .stats
        .ldm_high_water_doubles
        .max(t2.stats.ldm_high_water_doubles);

    PlanTiming {
        cycles,
        stats,
        sampled: true,
        modeled: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_sim::CpeStats;

    fn timing(cycles: u64, flops: u64) -> PlanTiming {
        PlanTiming {
            cycles,
            stats: CgStats {
                cycles,
                totals: CpeStats {
                    flops,
                    ..Default::default()
                },
                ..Default::default()
            },
            sampled: false,
            modeled: false,
        }
    }

    #[test]
    fn extrapolation_recovers_linear_cost() {
        // cost = 100 + 50*N
        let t1 = timing(150, 10);
        let t2 = timing(200, 20);
        let full = extrapolate(&t1, 1, &t2, 2, 100);
        assert_eq!(full.cycles, 100 + 50 * 100);
        assert_eq!(full.stats.totals.flops, 10 * 100);
        assert!(full.sampled);
    }

    #[test]
    fn gflops_from_timing() {
        let shape = ConvShape::new(8, 8, 8, 4, 4, 3, 3);
        let chip = ChipSpec::sw26010();
        let t = timing(1450, 0); // 1 µs
        let expected = shape.flops() as f64 / 1e-6 / 1e9;
        assert!((t.gflops(&shape, &chip) - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "two distinct")]
    fn extrapolate_rejects_bad_samples() {
        let t = timing(100, 1);
        let _ = extrapolate(&t, 2, &t, 2, 10);
    }
}
