//! The patch-GEMM plan: general-geometry convolution (stride, dilation,
//! padding, ragged pixel counts) on the register-communication mesh.
//!
//! The dense plans buy their bandwidth by exploiting dense structure —
//! whole image rows (Algorithm 1) or whole batch columns (Algorithm 2)
//! stream as one contiguous DMA block, which is exactly what stride-2 or
//! dilated shapes destroy. Instead of rejecting those shapes to the host,
//! this plan flattens the output space to `P = B·Ro·Co` pixels, gathers a
//! `Ni × b_P` input patch per filter tap on the MPE (the gather absorbs
//! all geometry: stride, dilation, padding, image edges), and runs one
//! register-communication GEMM per tap:
//!
//! ```text
//! C[No × b_P] += W_tap[No × Ni] · X_tap[Ni × b_P]      for each (kr, kc)
//! ```
//!
//! Mesh distribution (no duplicated data, §V-A): `X_tap` with
//! `ni ∈ chunk_i`, `p ∈ chunk_j`; `W_tap` with `no ∈ chunk_i`,
//! `ni ∈ chunk_j`; `C` with `no ∈ chunk_i`, `p ∈ chunk_j`. The last pixel
//! block is zero-padded in the gather and its puts are clipped to `P`, so
//! *any* pixel count is legal — only `Ni`/`No` keep the mesh-dim
//! divisibility constraint.
//!
//! The filter tap is reused `b_P` times and each gathered input element
//! `No` times, so the required MEM→LDM bandwidth follows Eq. 1 with
//! `b_Co·b_B → b_P` (priced by `ConvPerfModel` under
//! `PlanKind::PatchGemm`). LDM holds one patch, one tap matrix and the
//! output block — no double buffering, which keeps the footprint at
//! `Ni·b_P/64 + Ni·No/64 + No·b_P/64` doubles per CPE.

use super::gemm_mesh::{lease_scratch, regcomm_gemm_with, zero_c, GemmBlock};
use super::{extrapolate, ConvPlan, ConvRun, PlanTiming};
use crate::error::SwdnnError;
use crate::plans::PlanKind;
use sw_perfmodel::{Blocking, ChipSpec};
use sw_sim::{LdmBuf, Mesh};
use sw_tensor::{ConvGeometry, ConvShape, Layout, Shape4, Tensor4};

/// Per-tap GEMM over gathered output-pixel patches. `b_p` is the number
/// of flattened output pixels held in LDM at once (a multiple of the mesh
/// dimension).
#[derive(Clone, Copy, Debug)]
pub struct PatchGemmPlan {
    pub chip: ChipSpec,
    /// Gathered-pixel block `b_P`.
    pub b_p: usize,
    /// §VI kernel selection (ablation switch).
    pub reordered_kernel: bool,
    /// Fault-injection plan applied to the mesh this plan runs on.
    pub fault: Option<sw_sim::FaultPlan>,
    /// Execution context the simulated mesh runs on.
    pub rt: &'static sw_runtime::ExecutionContext,
}

impl PatchGemmPlan {
    pub fn new(b_p: usize) -> Self {
        Self {
            chip: ChipSpec::sw26010(),
            b_p,
            reordered_kernel: true,
            fault: None,
            rt: sw_runtime::global(),
        }
    }

    /// Largest pixel block (≤ 32·mesh_dim) whose patch + tap + output
    /// tiles fit the LDM budget for these channel counts.
    pub fn auto(chip: ChipSpec, shape: &ConvShape) -> Self {
        Self::auto_for(chip, shape.ni, shape.no)
    }

    /// [`PatchGemmPlan::auto`] from raw channel counts (general entry).
    pub fn auto_for(chip: ChipSpec, ni: usize, no: usize) -> Self {
        let dim = chip.mesh_dim;
        let mut b_p = 32 * dim;
        while b_p > dim && Self::ldm_doubles_for(chip, ni, no, b_p) > chip.ldm_doubles() {
            b_p /= 2;
        }
        Self::new(b_p).on_chip(chip)
    }

    pub fn on_chip(mut self, chip: ChipSpec) -> Self {
        self.chip = chip;
        self
    }

    pub fn with_fault(mut self, fault: Option<sw_sim::FaultPlan>) -> Self {
        self.fault = fault;
        self
    }

    pub fn on_runtime(mut self, rt: &'static sw_runtime::ExecutionContext) -> Self {
        self.rt = rt;
        self
    }

    pub fn with_reordered(mut self, reordered: bool) -> Self {
        self.reordered_kernel = reordered;
        self
    }

    fn ldm_doubles_for(chip: ChipSpec, ni: usize, no: usize, b_p: usize) -> usize {
        let dim = chip.mesh_dim;
        let (ni8, no8, p8) = (ni / dim, no / dim, b_p / dim);
        ni8 * p8 + ni8 * no8 + no8 * p8
    }

    /// Per-CPE LDM footprint in doubles: one gathered patch, one filter
    /// tap matrix, the output block.
    pub fn ldm_doubles(&self, ni: usize, no: usize) -> usize {
        Self::ldm_doubles_for(self.chip, ni, no, self.b_p)
    }

    /// Legality against raw geometry (shapes a dense [`ConvShape`] cannot
    /// express). Rejections carry a nominal shape built from the output
    /// extents, purely for error reporting.
    pub fn supports_general(
        &self,
        geom: &ConvGeometry,
        input: Shape4,
        no: usize,
    ) -> Result<(), SwdnnError> {
        let (batch, ni) = (input.d0, input.d1);
        let Some((ro, co)) = geom.output_extent(input.d2, input.d3) else {
            return Err(SwdnnError::PlanRejected {
                shape: ConvShape::new(batch, ni, no, 0, 0, geom.kr, geom.kc),
                reason: format!(
                    "effective filter {}x{} exceeds the padded {}x{} input",
                    geom.kr_eff(),
                    geom.kc_eff(),
                    input.d2,
                    input.d3
                ),
            });
        };
        let nominal = ConvShape::new(batch, ni, no, ro, co, geom.kr, geom.kc);
        let fail = |reason: String| {
            Err(SwdnnError::PlanRejected {
                shape: nominal,
                reason,
            })
        };
        let dim = self.chip.mesh_dim;
        if !ni.is_multiple_of(dim) || !no.is_multiple_of(dim) {
            return fail(format!("Ni and No must be multiples of {dim}"));
        }
        if self.b_p == 0 || !self.b_p.is_multiple_of(dim) {
            return fail(format!(
                "b_p {} must be a positive multiple of {dim}",
                self.b_p
            ));
        }
        let need = self.ldm_doubles(ni, no);
        if need > self.chip.ldm_doubles() {
            return fail(format!(
                "needs {need} LDM doubles > {}",
                self.chip.ldm_doubles()
            ));
        }
        Ok(())
    }

    /// Run the convolution under an arbitrary [`ConvGeometry`] — the
    /// entry point for shapes [`ConvShape`] cannot express. Output is a
    /// fresh NCHW tensor of the geometry's output extent.
    pub fn run_general(
        &self,
        geom: &ConvGeometry,
        input: &Tensor4<f64>,
        filter: &Tensor4<f64>,
    ) -> Result<ConvRun, SwdnnError> {
        let ishape = input.shape();
        let fshape = filter.shape();
        let no = fshape.d0;
        self.supports_general(geom, ishape, no)?;
        let (batch, ni) = (ishape.d0, ishape.d1);
        let (ri, ci) = (ishape.d2, ishape.d3);
        let (ro, co) = geom.output_extent(ri, ci).expect("checked by supports");
        let dim = self.chip.mesh_dim;
        let (ni8, no8, p8) = (ni / dim, no / dim, self.b_p / dim);
        let b_p = self.b_p;
        let pixels = batch * ro * co;
        let img = ro * co;

        // Filter repack: tap-major `w_flat[(tap·Ni + ni)·No + no]` so each
        // tap's `Ni × No` matrix is one strided fetch per CPE.
        let mut w_flat = vec![0.0f64; geom.kr * geom.kc * ni * no];
        for n_o in 0..no {
            for n_i in 0..ni {
                for kr in 0..geom.kr {
                    for kc in 0..geom.kc {
                        w_flat[((kr * geom.kc + kc) * ni + n_i) * no + n_o] =
                            filter.get(n_o, n_i, kr, kc);
                    }
                }
            }
        }

        let mut output = Tensor4::zeros(Shape4::new(batch, no, ro, co), Layout::Nchw);
        struct Slot {
            x: LdmBuf,
            w: LdmBuf,
            c: LdmBuf,
        }
        let mut mesh: Mesh<Slot> = Mesh::new_on(self.rt, self.chip, |_, _| Slot {
            x: LdmBuf { offset: 0, len: 0 },
            w: LdmBuf { offset: 0, len: 0 },
            c: LdmBuf { offset: 0, len: 0 },
        });
        if let Some(fp) = self.fault {
            mesh.inject_faults(fp);
        }
        mesh.superstep(|ctx, s| {
            s.x = ctx.ldm_alloc(ni8 * p8)?;
            s.w = ctx.ldm_alloc(ni8 * no8)?;
            s.c = ctx.ldm_alloc(no8 * p8)?;
            Ok(())
        })?;

        let mut scratch = lease_scratch(self.rt, mesh.chip.mesh_dim);
        // The gather target, rebuilt per (block, tap): `x_tap[ni·b_p + p]`
        // with out-of-image taps (padding, edges, the zero-padded tail
        // block) already resolved to 0 — the mesh sees a dense matrix.
        let mut x_tap = vec![0.0f64; ni * b_p];

        for block in 0..pixels.div_ceil(b_p) {
            let p0 = block * b_p;
            zero_c(&mut mesh, |s: &Slot| s.c)?;
            for tkr in 0..geom.kr {
                for tkc in 0..geom.kc {
                    let tap = tkr * geom.kc + tkc;
                    for (pl, slot) in x_tap.chunks_mut(b_p).enumerate() {
                        // `pl` walks ni; gather this channel's pixel row.
                        for (t, v) in slot.iter_mut().enumerate() {
                            let p = p0 + t;
                            *v = 0.0;
                            if p >= pixels {
                                continue;
                            }
                            let (b, rem) = (p / img, p % img);
                            let (orow, ocol) = (rem / co, rem % co);
                            let ir = orow * geom.stride_r + tkr * geom.dil_r;
                            let ic = ocol * geom.stride_c + tkc * geom.dil_c;
                            if ir < geom.pad_r || ic < geom.pad_c {
                                continue;
                            }
                            let (ir, ic) = (ir - geom.pad_r, ic - geom.pad_c);
                            if ir < ri && ic < ci {
                                *v = input.get(b, pl, ir, ic);
                            }
                        }
                    }
                    mesh.superstep(|ctx, s| {
                        // Collective row-mode DMA: a mesh row jointly
                        // fetches the b_p-pixel run of each channel.
                        ctx.dma_block_hint(8 * b_p);
                        let hx = ctx.dma_get_strided(
                            s.x,
                            0,
                            &x_tap,
                            (ctx.row * ni8) * b_p + ctx.col * p8,
                            ni8,
                            b_p,
                            p8,
                        )?;
                        let hw = ctx.dma_get_strided(
                            s.w,
                            0,
                            &w_flat,
                            (tap * ni + ctx.col * ni8) * no + ctx.row * no8,
                            ni8,
                            no,
                            no8,
                        )?;
                        ctx.dma_wait(hx);
                        ctx.dma_wait(hw);
                        Ok(())
                    })?;
                    regcomm_gemm_with(
                        &mut mesh,
                        GemmBlock {
                            m8: no8,
                            n8: p8,
                            k8: ni8,
                            c_stride: p8,
                            reordered: self.reordered_kernel,
                        },
                        &mut scratch,
                        |ctx, s: &Slot, dst: &mut Vec<f64>| {
                            dst.extend_from_slice(ctx.ldm(s.w));
                        },
                        |ctx, s: &Slot, dst: &mut Vec<f64>| {
                            dst.extend_from_slice(ctx.ldm(s.x));
                        },
                        |s: &Slot| (s.c, 0),
                    )?;
                }
            }

            // Store: pixels are contiguous in NCHW per (batch, channel)
            // run, so each C row is put as maximal same-batch runs,
            // clipped at `pixels` (the tail block's padding is dropped).
            mesh.superstep(|ctx, s| {
                let p_start = p0 + ctx.col * p8;
                let mut last = None;
                for m in 0..no8 {
                    let n_o = ctx.row * no8 + m;
                    let mut p = p_start;
                    while p < (p_start + p8).min(pixels) {
                        let b = p / img;
                        let run_end = (p_start + p8).min(pixels).min((b + 1) * img);
                        let dst = (b * no + n_o) * img + (p - b * img);
                        ctx.dma_block_hint(8 * b_p);
                        last = Some(ctx.dma_put(s.c, m * p8 + (p - p_start), dst, run_end - p)?);
                        p = run_end;
                    }
                }
                if let Some(h) = last {
                    ctx.dma_wait(h);
                }
                Ok(())
            })?;
        }

        mesh.drain_puts(output.data_mut())?;
        mesh.assert_inboxes_empty()?;
        let stats = mesh.stats();
        Ok(ConvRun {
            output,
            timing: PlanTiming {
                cycles: stats.cycles,
                stats,
                sampled: false,
                modeled: false,
            },
        })
    }

    /// Timing for an arbitrary geometry: a full seeded run (general
    /// shapes reachable today are small; sampling rides on
    /// [`ConvPlan::time_full_shape`] for the dense path).
    pub fn time_general(
        &self,
        geom: &ConvGeometry,
        input_shape: Shape4,
        no: usize,
    ) -> Result<PlanTiming, SwdnnError> {
        let input = sw_tensor::init::seeded_tensor(input_shape, Layout::Nchw, 1);
        let filter = sw_tensor::init::seeded_tensor(
            Shape4::new(no, input_shape.d1, geom.kr, geom.kc),
            Layout::Nchw,
            2,
        );
        Ok(self.run_general(geom, &input, &filter)?.timing)
    }
}

impl ConvPlan for PatchGemmPlan {
    fn name(&self) -> &'static str {
        "patch_gemm"
    }

    fn kind(&self) -> PlanKind {
        PlanKind::PatchGemm
    }

    fn blocking(&self, _shape: &ConvShape) -> Blocking {
        // b_p rides in the model's b_b slot (see ConvPerfModel).
        Blocking {
            b_b: self.b_p,
            b_co: 1,
        }
    }

    fn supports(&self, shape: &ConvShape) -> Result<(), SwdnnError> {
        let geom = ConvGeometry::valid(shape.kr, shape.kc);
        self.supports_general(&geom, shape.input_shape(), shape.no)
            .map_err(|e| match e {
                // The trait contract is the plans' Unsupported class.
                SwdnnError::PlanRejected { reason, .. } => SwdnnError::Unsupported {
                    plan: "patch_gemm",
                    shape: *shape,
                    reason,
                },
                other => other,
            })
    }

    fn run(
        &self,
        shape: &ConvShape,
        input: &Tensor4<f64>,
        filter: &Tensor4<f64>,
    ) -> Result<ConvRun, SwdnnError> {
        self.supports(shape)?;
        let geom = ConvGeometry::valid(shape.kr, shape.kc);
        self.run_general(&geom, input, filter)
    }

    fn time_full_shape(&self, shape: &ConvShape) -> Result<PlanTiming, SwdnnError> {
        self.supports(shape)?;
        let blocks = |ro: usize| (shape.batch * ro * shape.co).div_ceil(self.b_p) as u64;
        let reduced = |n_ro: usize| ConvShape { ro: n_ro, ..*shape };
        let run = |s: &ConvShape| -> Result<PlanTiming, SwdnnError> {
            let input = sw_tensor::init::seeded_tensor(s.input_shape(), Layout::Nchw, 1);
            let filter = sw_tensor::init::seeded_tensor(s.filter_shape(), Layout::Nchw, 2);
            Ok(self.run(s, &input, &filter)?.timing)
        };
        let (n1, n2, n_full) = (blocks(1), blocks(2), blocks(shape.ro));
        if n_full <= 4 || n2 <= n1 {
            return run(shape);
        }
        let t1 = run(&reduced(1))?;
        let t2 = run(&reduced(2))?;
        Ok(extrapolate(&t1, n1, &t2, n2, n_full))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::init::{lattice_tensor, seeded_tensor};
    use sw_tensor::{conv2d_general, conv2d_ref};

    #[test]
    fn dense_shapes_match_reference_exactly_on_lattice_data() {
        let shape = ConvShape::new(16, 8, 8, 4, 4, 3, 3);
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 31);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 32);
        let expect = conv2d_ref(shape, &input, &filter);
        let run = PatchGemmPlan::new(32).run(&shape, &input, &filter).unwrap();
        assert_eq!(run.output.max_abs_diff(&expect), 0.0);
        assert!(run.timing.cycles > 0);
    }

    #[test]
    fn ragged_pixel_counts_pad_the_tail_block_correctly() {
        // P = 8·3·3 = 72, b_p = 32: two full blocks + a 8-pixel tail.
        let shape = ConvShape::new(8, 8, 8, 3, 3, 2, 2);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 33);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 34);
        let expect = conv2d_ref(shape, &input, &filter);
        let run = PatchGemmPlan::new(32).run(&shape, &input, &filter).unwrap();
        assert!(run.output.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn stride_two_matches_the_general_reference() {
        let geom = ConvGeometry::valid(3, 3).with_stride(2, 2);
        let input = seeded_tensor(Shape4::new(8, 16, 9, 9), Layout::Nchw, 35);
        let filter = seeded_tensor(Shape4::new(16, 16, 3, 3), Layout::Nchw, 36);
        let expect = conv2d_general(&geom, &input, &filter);
        let run = PatchGemmPlan::new(64)
            .run_general(&geom, &input, &filter)
            .unwrap();
        assert_eq!(run.output.shape(), expect.shape());
        assert!(run.output.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn padding_and_dilation_match_the_general_reference() {
        let geom = ConvGeometry::same(3, 3).with_dilation(2, 2);
        let input = seeded_tensor(Shape4::new(4, 8, 8, 8), Layout::Nchw, 37);
        let filter = seeded_tensor(Shape4::new(8, 8, 3, 3), Layout::Nchw, 38);
        let expect = conv2d_general(&geom, &input, &filter);
        let run = PatchGemmPlan::new(32)
            .run_general(&geom, &input, &filter)
            .unwrap();
        assert_eq!(run.output.shape(), expect.shape());
        assert!(run.output.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn rejects_channels_off_the_mesh_grid() {
        let shape = ConvShape::new(8, 7, 8, 4, 4, 3, 3);
        let err = PatchGemmPlan::new(32).supports(&shape).unwrap_err();
        assert!(matches!(err, SwdnnError::Unsupported { .. }), "{err}");
        let geom = ConvGeometry::valid(3, 3);
        let err = PatchGemmPlan::new(32)
            .supports_general(&geom, Shape4::new(8, 7, 6, 6), 8)
            .unwrap_err();
        assert!(matches!(err, SwdnnError::PlanRejected { .. }), "{err}");
    }

    #[test]
    fn auto_blocking_fits_ldm() {
        let chip = ChipSpec::sw26010();
        let plan = PatchGemmPlan::auto_for(chip, 256, 256);
        assert!(plan.ldm_doubles(256, 256) <= chip.ldm_doubles());
        assert!(plan.b_p >= chip.mesh_dim);
    }

    #[test]
    fn sampled_timing_tracks_full_timing() {
        let shape = ConvShape::new(8, 8, 8, 6, 8, 3, 3);
        let plan = PatchGemmPlan::new(64);
        let full = {
            let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 1);
            let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 2);
            plan.run(&shape, &input, &filter).unwrap().timing
        };
        let sampled = plan.time_full_shape(&shape).unwrap();
        assert!(sampled.sampled);
        let rel = (sampled.cycles as f64 - full.cycles as f64).abs() / full.cycles as f64;
        assert!(
            rel < 0.05,
            "sampled {} vs full {} ({rel:.3})",
            sampled.cycles,
            full.cycles
        );
    }
}
