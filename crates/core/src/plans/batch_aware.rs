//! The batch-size-aware convolution plan — Algorithm 2 of the paper.
//!
//! When the batch is large, Eq. 2's required bandwidth is already low
//! without column blocking: the plan streams input *pixel columns* across
//! the whole batch (`Ni × B` doubles per column, contiguous in the
//! `(4, B/4, C, R, N)` layout, so the collective DMA block is `8·B` bytes —
//! deep into the fast region of the Table II curve).
//!
//! For each output-column block and output row:
//!
//! 1. zero the distributed `No × b_Co × B` accumulator;
//! 2. for each `kr`: DMA the filter slice `W[kr][·]`, then stream the
//!    `b_Co + Kc − 1` input columns of row `ro + kr` (double-buffered);
//!    each column `ci` feeds up to `Kc` register-communication GEMMs, one
//!    per output column `co = ci − kc` inside the block
//!    (Algorithm 2's "if cCo >= Costart and cCo < Costart + ..." guard);
//! 3. DMA the output block back.
//!
//! Mesh distribution: input channels `ni ∈ chunk_i` with batch slice
//! `b ∈ chunk_j`; filters `no ∈ chunk_i`, `ni ∈ chunk_j`; outputs
//! `no ∈ chunk_i`, `b ∈ chunk_j`.

use super::gemm_mesh::{lease_scratch, regcomm_gemm_with, zero_c, GemmBlock};
use super::{extrapolate, ConvPlan, ConvRun, PlanTiming};
use crate::error::SwdnnError;
use crate::plans::PlanKind;
use sw_perfmodel::{Blocking, ChipSpec};
use sw_sim::{DmaHandle, LdmBuf, Mesh};
use sw_tensor::{ConvShape, Layout, Tensor4};

/// Algorithm 2. `b_co` is the output-column block held in LDM at once.
#[derive(Clone, Copy, Debug)]
pub struct BatchAwarePlan {
    pub chip: ChipSpec,
    pub b_co: usize,
    /// §VI kernel selection (ablation switch).
    pub reordered_kernel: bool,
    /// Fault-injection plan applied to the mesh this plan runs on.
    pub fault: Option<sw_sim::FaultPlan>,
    /// Execution context the simulated mesh runs on.
    pub rt: &'static sw_runtime::ExecutionContext,
}

impl BatchAwarePlan {
    pub fn new(b_co: usize) -> Self {
        Self {
            chip: ChipSpec::sw26010(),
            b_co,
            reordered_kernel: true,
            fault: None,
            rt: sw_runtime::global(),
        }
    }

    /// Pick the largest power-of-two `b_co` dividing `Co` that fits LDM.
    pub fn auto(shape: &ConvShape) -> Self {
        Self::auto_on(ChipSpec::sw26010(), shape)
    }

    /// [`BatchAwarePlan::auto`] on an explicit (possibly degraded) chip.
    pub fn auto_on(chip: ChipSpec, shape: &ConvShape) -> Self {
        let mut b_co = 16usize;
        while b_co > 1 {
            if shape.co.is_multiple_of(b_co) {
                let plan = Self {
                    b_co,
                    ..Self::new(b_co).on_chip(chip)
                };
                if plan.ldm_doubles(shape) <= chip.ldm_doubles() {
                    return plan;
                }
            }
            b_co /= 2;
        }
        Self::new(1).on_chip(chip)
    }

    /// Run on a different (e.g. degraded) chip.
    pub fn on_chip(mut self, chip: ChipSpec) -> Self {
        self.chip = chip;
        self
    }

    /// Inject faults into the mesh this plan runs on.
    pub fn with_fault(mut self, fault: Option<sw_sim::FaultPlan>) -> Self {
        self.fault = fault;
        self
    }

    /// Run the simulated mesh on an explicit execution context.
    pub fn on_runtime(mut self, rt: &'static sw_runtime::ExecutionContext) -> Self {
        self.rt = rt;
        self
    }

    /// Per-CPE LDM footprint in doubles: double-buffered input column,
    /// one filter slice (`Kc` matrices for the current `kr`), and the
    /// output block.
    pub fn ldm_doubles(&self, shape: &ConvShape) -> usize {
        let dim = self.chip.mesh_dim;
        let (ni8, no8, b8) = (shape.ni / dim, shape.no / dim, shape.batch / dim);
        2 * ni8 * b8 + shape.kc * ni8 * no8 + no8 * self.b_co * b8
    }
}

struct Slot {
    di: [LdmBuf; 2],
    w: LdmBuf,
    c: LdmBuf,
    di_h: [Option<DmaHandle>; 2],
    w_h: Option<DmaHandle>,
}

impl ConvPlan for BatchAwarePlan {
    fn name(&self) -> &'static str {
        "batch_size_aware"
    }

    fn kind(&self) -> PlanKind {
        PlanKind::BatchSizeAware
    }

    fn blocking(&self, shape: &ConvShape) -> Blocking {
        // Algorithm 2 streams the whole batch and holds a b_co output
        // window; report the executed values, not the selector's.
        Blocking {
            b_b: shape.batch,
            b_co: self.b_co,
        }
    }

    fn supports(&self, shape: &ConvShape) -> Result<(), SwdnnError> {
        let fail = |reason: String| {
            Err(SwdnnError::Unsupported {
                plan: "batch_size_aware",
                shape: *shape,
                reason,
            })
        };
        let dim = self.chip.mesh_dim;
        if !shape.ni.is_multiple_of(dim) || !shape.no.is_multiple_of(dim) {
            return fail(format!("Ni and No must be multiples of {dim}"));
        }
        if !shape.batch.is_multiple_of(dim) {
            return fail(format!("batch must be a multiple of {dim}"));
        }
        if !shape.co.is_multiple_of(self.b_co) {
            return fail(format!(
                "Co {} not divisible by b_co {}",
                shape.co, self.b_co
            ));
        }
        let need = self.ldm_doubles(shape);
        if need > self.chip.ldm_doubles() {
            return fail(format!(
                "needs {need} LDM doubles > {}",
                self.chip.ldm_doubles()
            ));
        }
        Ok(())
    }

    fn run(
        &self,
        shape: &ConvShape,
        input: &Tensor4<f64>,
        filter: &Tensor4<f64>,
    ) -> Result<ConvRun, SwdnnError> {
        self.supports(shape)?;
        let dim = self.chip.mesh_dim;
        let (ni8, no8, b8) = (shape.ni / dim, shape.no / dim, shape.batch / dim);
        let b_co = self.b_co;
        let (ri, ci_n) = (shape.ri(), shape.ci());
        let (ro_n, co_n, kr_n, kc_n) = (shape.ro, shape.co, shape.kr, shape.kc);
        let (ni, no, batch) = (shape.ni, shape.no, shape.batch);

        let input = input.to_layout(Layout::BatchAware);
        let in_data = input.data();
        let mut w_flat = vec![0.0f64; kr_n * kc_n * ni * no];
        for n_o in 0..no {
            for n_i in 0..ni {
                for kr in 0..kr_n {
                    for kc in 0..kc_n {
                        w_flat[((kr * kc_n + kc) * ni + n_i) * no + n_o] =
                            filter.get(n_o, n_i, kr, kc);
                    }
                }
            }
        }

        let mut output = Tensor4::zeros(shape.output_shape(), Layout::BatchAware);
        let mut mesh: Mesh<Slot> = Mesh::new_on(self.rt, self.chip, |_, _| Slot {
            di: [LdmBuf { offset: 0, len: 0 }; 2],
            w: LdmBuf { offset: 0, len: 0 },
            c: LdmBuf { offset: 0, len: 0 },
            di_h: [None; 2],
            w_h: None,
        });
        if let Some(fp) = self.fault {
            mesh.inject_faults(fp);
        }

        let di_len = ni8 * b8;
        let w_len = kc_n * ni8 * no8;
        let c_len = no8 * b_co * b8;
        mesh.superstep(|ctx, s| {
            s.di = [ctx.ldm_alloc(di_len)?, ctx.ldm_alloc(di_len)?];
            s.w = ctx.ldm_alloc(w_len)?;
            s.c = ctx.ldm_alloc(c_len)?;
            Ok(())
        })?;

        // Fetch one input column (ci, ri) into di[p]; returns via state.
        let get_column = |ctx: &mut sw_sim::CpeCtx<'_>,
                          s: &mut Slot,
                          ci: usize,
                          r_i: usize,
                          p: usize|
         -> Result<(), sw_sim::SimError> {
            // Collective row-mode DMA: the 8 CPEs of a row jointly fetch
            // the contiguous B-double run of each (ni, pixel).
            let src_off = ((ctx.row * ni8) * ri + r_i) * ci_n * batch + ci * batch + ctx.col * b8;
            ctx.dma_block_hint(8 * batch);
            let h =
                ctx.dma_get_strided(s.di[p], 0, in_data, src_off, ni8, ri * ci_n * batch, b8)?;
            s.di_h[p] = Some(h);
            Ok(())
        };

        // One pack/payload arena reused by every GEMM rotation below, leased
        // from the execution context across runs.
        let mut scratch = lease_scratch(self.rt, mesh.chip.mesh_dim);

        for tile_c in 0..co_n / b_co {
            let co0 = tile_c * b_co;
            let win = b_co + kc_n - 1;
            for r_o in 0..ro_n {
                zero_c(&mut mesh, |s: &Slot| s.c)?;
                for kr in 0..kr_n {
                    let r_i = r_o + kr;
                    // Filter slice for this kr + first input column.
                    mesh.superstep(|ctx, s| {
                        let src_off = (kr * kc_n * ni + ctx.col * ni8) * no + ctx.row * no8;
                        // One strided request per kc slice.
                        let mut last = None;
                        for kc in 0..kc_n {
                            let h = ctx.dma_get_strided(
                                s.w,
                                kc * ni8 * no8,
                                &w_flat,
                                src_off + kc * ni * no,
                                ni8,
                                no,
                                no8,
                            )?;
                            last = Some(h);
                        }
                        s.w_h = last;
                        get_column(ctx, s, co0, r_i, 0)?;
                        if let Some(h) = s.w_h.take() {
                            ctx.dma_wait(h);
                        }
                        Ok(())
                    })?;

                    for ci_local in 0..win {
                        let ci = co0 + ci_local;
                        let p = ci_local % 2;
                        // Wait for this column, prefetch the next.
                        mesh.superstep(|ctx, s| {
                            if ci_local + 1 < win {
                                get_column(ctx, s, ci + 1, r_i, (ci_local + 1) % 2)?;
                            }
                            if let Some(h) = s.di_h[p].take() {
                                ctx.dma_wait(h);
                            }
                            Ok(())
                        })?;

                        for kc in 0..kc_n {
                            if ci < kc {
                                continue;
                            }
                            let co = ci - kc;
                            if co < co0 || co >= co0 + b_co || co >= co_n {
                                continue;
                            }
                            let co_local = co - co0;
                            regcomm_gemm_with(
                                &mut mesh,
                                GemmBlock {
                                    m8: no8,
                                    n8: b8,
                                    k8: ni8,
                                    c_stride: b_co * b8,
                                    reordered: self.reordered_kernel,
                                },
                                &mut scratch,
                                move |ctx, s: &Slot, dst: &mut Vec<f64>| {
                                    dst.extend_from_slice(
                                        &ctx.ldm(s.w)[kc * ni8 * no8..(kc + 1) * ni8 * no8],
                                    );
                                },
                                move |ctx, s: &Slot, dst: &mut Vec<f64>| {
                                    dst.extend_from_slice(ctx.ldm(s.di[p]));
                                },
                                move |s: &Slot| (s.c, co_local * b8),
                            )?;
                        }
                    }
                }

                // Store the output block: per (no_local): scatter b_co runs
                // of b8 doubles.
                mesh.superstep(|ctx, s| {
                    let mut last = None;
                    for no_l in 0..no8 {
                        let n_o = ctx.row * no8 + no_l;
                        let dst_off =
                            (n_o * ro_n + r_o) * co_n * batch + co0 * batch + ctx.col * b8;
                        ctx.dma_block_hint(8 * batch);
                        let h = ctx.dma_put_scatter(
                            s.c,
                            no_l * b_co * b8,
                            b8,
                            dst_off,
                            batch,
                            b_co,
                            b8,
                        )?;
                        last = Some(h);
                    }
                    if let Some(h) = last {
                        ctx.dma_wait(h);
                    }
                    Ok(())
                })?;
            }
        }

        mesh.drain_puts(output.data_mut())?;
        mesh.assert_inboxes_empty()?;
        let stats = mesh.stats();
        Ok(ConvRun {
            output,
            timing: PlanTiming {
                cycles: stats.cycles,
                stats,
                sampled: false,
                modeled: false,
            },
        })
    }

    fn time_full_shape(&self, shape: &ConvShape) -> Result<PlanTiming, SwdnnError> {
        self.supports(shape)?;
        let reduced = |n_ro: usize| ConvShape {
            batch: shape.batch,
            ni: shape.ni,
            no: shape.no,
            ro: n_ro,
            co: self.b_co,
            kr: shape.kr,
            kc: shape.kc,
        };
        let run = |s: &ConvShape| -> Result<PlanTiming, SwdnnError> {
            let input = sw_tensor::init::seeded_tensor(s.input_shape(), Layout::BatchAware, 21);
            let filter = sw_tensor::init::seeded_tensor(s.filter_shape(), Layout::Nchw, 22);
            Ok(self.run(s, &input, &filter)?.timing)
        };
        let t1 = run(&reduced(1))?;
        let t2 = run(&reduced(2))?;
        let n_full = (shape.co / self.b_co) as u64 * shape.ro as u64;
        Ok(extrapolate(&t1, 1, &t2, 2, n_full))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::conv2d_ref;
    use sw_tensor::init::{lattice_tensor, seeded_tensor};

    fn small_shape() -> ConvShape {
        ConvShape::new(16, 8, 8, 4, 8, 3, 3)
    }

    #[test]
    fn matches_reference_exactly_on_lattice_data() {
        let shape = small_shape();
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 13);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 14);
        let expect = conv2d_ref(shape, &input, &filter);
        let run = BatchAwarePlan::new(4).run(&shape, &input, &filter).unwrap();
        assert_eq!(run.output.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn matches_reference_on_asymmetric_filters() {
        // kr != kc exercises the (kr, kc) bookkeeping.
        let shape = ConvShape::new(8, 8, 16, 3, 6, 2, 3);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 15);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 16);
        let expect = conv2d_ref(shape, &input, &filter);
        let run = BatchAwarePlan::new(2).run(&shape, &input, &filter).unwrap();
        assert!(run.output.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn matches_reference_with_1x1_filter() {
        let shape = ConvShape::new(8, 8, 8, 4, 4, 1, 1);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 17);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 18);
        let expect = conv2d_ref(shape, &input, &filter);
        let run = BatchAwarePlan::new(4).run(&shape, &input, &filter).unwrap();
        assert!(run.output.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn auto_blocking_fits_ldm() {
        let shape = ConvShape::new(128, 256, 256, 64, 64, 3, 3);
        let plan = BatchAwarePlan::auto(&shape);
        assert!(plan.ldm_doubles(&shape) <= plan.chip.ldm_doubles());
        assert!(plan.supports(&shape).is_ok());
    }

    #[test]
    fn rejects_oversized_channels() {
        // Ni=No=384: the filter slice alone (3*48*48*... ) blows LDM.
        let shape = ConvShape::new(128, 384, 384, 64, 64, 3, 3);
        let plan = BatchAwarePlan::new(1);
        assert!(plan.supports(&shape).is_err());
    }

    #[test]
    fn timing_and_flops_are_exact() {
        let shape = small_shape();
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 19);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 20);
        let run = BatchAwarePlan::new(4).run(&shape, &input, &filter).unwrap();
        assert_eq!(run.timing.stats.totals.flops, shape.flops());
        assert!(run.timing.cycles > 0);
    }

    #[test]
    fn sampled_timing_tracks_full_timing() {
        let shape = ConvShape::new(16, 8, 8, 6, 8, 3, 3);
        let plan = BatchAwarePlan::new(4);
        let full = {
            let input = seeded_tensor(shape.input_shape(), Layout::BatchAware, 23);
            let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 24);
            plan.run(&shape, &input, &filter).unwrap().timing
        };
        let sampled = plan.time_full_shape(&shape).unwrap();
        let rel = (sampled.cycles as f64 - full.cycles as f64).abs() / full.cycles as f64;
        assert!(
            rel < 0.05,
            "sampled {} vs full {} ({rel:.3})",
            sampled.cycles,
            full.cycles
        );
    }
}
