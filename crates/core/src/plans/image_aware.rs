//! The image-size-aware convolution plan — Algorithm 1 of the paper.
//!
//! LDM blocking on the batch (`b_B`) and output-column (`b_Co`) dimensions,
//! with the DMA of the input window promoted out of the `kc` loop ("we can
//! promote the DMA operation at line 6 to line 4 and read input image tile
//! of size `(Costart : Costart + Kc + bCo)`"), so each input row window is
//! fetched once per `kr` and reused for all `Kc` filter columns.
//!
//! For each output tile `(b-block, ro, co-block)`:
//!
//! 1. zero the distributed output accumulator;
//! 2. for each `kr`: DMA the input row window (double-buffered against the
//!    previous `kr`'s compute) and the filter slice `W[kr][·]`;
//! 3. for each `kc`: one register-communication GEMM rotation
//!    (`M = No`, `N = b_B·b_Co` pixels, `K = Ni`) reading a shifted
//!    sub-window of the LDM-resident input;
//! 4. DMA the output tile back.
//!
//! Data layouts: input/output in [`Layout::ImageAware`]
//! (`(4, C, R, N, B/4)` — the DMA block per CPE is a `4·(b_Co+Kc−1)`-double
//! run, large and aligned), filters repacked host-side to `(Kr, Kc, Ni, No)`
//! so each `(kr, kc)` slice is a contiguous `Ni × No` matrix.
//!
//! Mesh distribution (per CPE `(i, j)`):
//! * input: channels `ni ∈ chunk_i`, batch-quads `∈ chunk_j` — no element
//!   is duplicated across CPEs (§V-A);
//! * filters: `no ∈ chunk_i`, `ni ∈ chunk_j`;
//! * output: `no ∈ chunk_i`, pixels `∈ chunk_j`.

use super::gemm_mesh::{lease_scratch, regcomm_gemm_with, zero_c, GemmBlock};
use super::{extrapolate, ConvPlan, ConvRun, PlanTiming};
use crate::error::SwdnnError;
use crate::plans::PlanKind;
use sw_perfmodel::select::{ldm_doubles_image_aware, Blocking};
use sw_perfmodel::ChipSpec;
use sw_sim::{DmaHandle, LdmBuf, Mesh};
use sw_tensor::{ConvShape, Layout, Tensor4};

/// Algorithm 1 with a fixed blocking choice.
#[derive(Clone, Copy, Debug)]
pub struct ImageAwarePlan {
    pub chip: ChipSpec,
    pub blocking: Blocking,
    /// Reduction (input-channel) block `b_Ni` — §IV-A: "if LDM space is
    /// not enough for large Ni or No, we still need to apply loop blocking
    /// on these dimensions". `None` keeps the whole `Ni` resident.
    pub b_ni: Option<usize>,
    /// Use the §VI software-pipelined inner kernel (true) or the naive one
    /// (false) — the Fig. 6 ablation switch.
    pub reordered_kernel: bool,
    /// Double-buffer DMA against compute (§IV-A). `false` fetches each
    /// tile synchronously — the ablation that shows why the paper bothers.
    pub double_buffer: bool,
    /// Fault-injection plan applied to the mesh this plan runs on.
    pub fault: Option<sw_sim::FaultPlan>,
    /// Execution context the simulated mesh runs on.
    pub rt: &'static sw_runtime::ExecutionContext,
}

impl ImageAwarePlan {
    pub fn new(blocking: Blocking) -> Self {
        Self {
            chip: ChipSpec::sw26010(),
            blocking,
            b_ni: None,
            reordered_kernel: true,
            double_buffer: true,
            fault: None,
            rt: sw_runtime::global(),
        }
    }

    /// Blocking from the performance model's default.
    pub fn with_defaults() -> Self {
        Self::new(Blocking::default())
    }

    /// Add input-channel blocking (must divide `Ni`, multiple of 8).
    pub fn with_ni_blocking(mut self, b_ni: usize) -> Self {
        self.b_ni = Some(b_ni);
        self
    }

    /// Run on a different (e.g. degraded) chip.
    pub fn on_chip(mut self, chip: ChipSpec) -> Self {
        self.chip = chip;
        self
    }

    /// Inject faults into the mesh this plan runs on.
    pub fn with_fault(mut self, fault: Option<sw_sim::FaultPlan>) -> Self {
        self.fault = fault;
        self
    }

    /// Run the simulated mesh on an explicit execution context.
    pub fn on_runtime(mut self, rt: &'static sw_runtime::ExecutionContext) -> Self {
        self.rt = rt;
        self
    }

    fn effective_b_ni(&self, shape: &ConvShape) -> usize {
        self.b_ni.unwrap_or(shape.ni).min(shape.ni)
    }

    /// Per-CPE LDM footprint in doubles with this plan's blocking.
    pub fn ldm_doubles(&self, shape: &ConvShape) -> usize {
        let blocked = ConvShape {
            ni: self.effective_b_ni(shape),
            ..*shape
        };
        ldm_doubles_image_aware(&blocked, self.blocking)
    }

    fn dims(&self, shape: &ConvShape) -> Dims {
        let dim = self.chip.mesh_dim;
        let quads_per_cpe = self.blocking.b_b / (4 * dim);
        let win = self.blocking.b_co + shape.kc - 1;
        Dims {
            ni8: self.effective_b_ni(shape) / dim,
            no8: shape.no / dim,
            quads: quads_per_cpe,
            win4: 4 * win,
            n8: quads_per_cpe * 4 * self.blocking.b_co,
            b_co: self.blocking.b_co,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Dims {
    ni8: usize,
    no8: usize,
    /// Batch quads per CPE.
    quads: usize,
    /// Doubles per `(quad, ni)` input row window (`4·(b_co+Kc−1)`).
    win4: usize,
    /// Output pixels per CPE (`quads · 4 · b_co`).
    n8: usize,
    b_co: usize,
}

/// Per-CPE buffers and in-flight DMA handles.
struct Slot {
    di: [LdmBuf; 2],
    w: [LdmBuf; 2],
    c: LdmBuf,
    di_h: [Option<DmaHandle>; 2],
    w_h: [Option<DmaHandle>; 2],
}

impl ConvPlan for ImageAwarePlan {
    fn name(&self) -> &'static str {
        "image_size_aware"
    }

    fn kind(&self) -> PlanKind {
        PlanKind::ImageSizeAware
    }

    fn blocking(&self, _shape: &ConvShape) -> Blocking {
        self.blocking
    }

    fn supports(&self, shape: &ConvShape) -> Result<(), SwdnnError> {
        let fail = |reason: String| {
            Err(SwdnnError::Unsupported {
                plan: "image_size_aware",
                shape: *shape,
                reason,
            })
        };
        let Blocking { b_b, b_co } = self.blocking;
        let dim = self.chip.mesh_dim;
        if !shape.ni.is_multiple_of(dim) || !shape.no.is_multiple_of(dim) {
            return fail(format!("Ni and No must be multiples of {dim}"));
        }
        if b_b % (4 * dim) != 0 {
            return fail(format!("b_B ({b_b}) must be a multiple of {}", 4 * dim));
        }
        if !shape.batch.is_multiple_of(b_b) {
            return fail(format!("batch {} not divisible by b_B {b_b}", shape.batch));
        }
        if !shape.co.is_multiple_of(b_co) {
            return fail(format!("Co {} not divisible by b_Co {b_co}", shape.co));
        }
        let b_ni = self.effective_b_ni(shape);
        if !b_ni.is_multiple_of(dim) || !shape.ni.is_multiple_of(b_ni) {
            return fail(format!(
                "b_Ni ({b_ni}) must be a multiple of {dim} dividing Ni ({})",
                shape.ni
            ));
        }
        let need = self.ldm_doubles(shape);
        if need > self.chip.ldm_doubles() {
            return fail(format!(
                "needs {need} LDM doubles > {}",
                self.chip.ldm_doubles()
            ));
        }
        Ok(())
    }

    fn run(
        &self,
        shape: &ConvShape,
        input: &Tensor4<f64>,
        filter: &Tensor4<f64>,
    ) -> Result<ConvRun, SwdnnError> {
        self.supports(shape)?;
        let d = self.dims(shape);
        let Blocking { b_b, b_co } = self.blocking;
        let (ri, ci) = (shape.ri(), shape.ci());
        let (ro, co, kr_n, kc_n) = (shape.ro, shape.co, shape.kr, shape.kc);
        let (ni, no) = (shape.ni, shape.no);
        let b_ni = self.effective_b_ni(shape);
        let ni_blocks = ni / b_ni;

        // Host-side layout preparation (done once per layer in practice).
        let input = input.to_layout(Layout::ImageAware);
        let in_data = input.data();
        // Filters repacked to (Kr, Kc, Ni, No).
        let mut w_flat = vec![0.0f64; kr_n * kc_n * ni * no];
        for n_o in 0..no {
            for n_i in 0..ni {
                for kr in 0..kr_n {
                    for kc in 0..kc_n {
                        w_flat[((kr * kc_n + kc) * ni + n_i) * no + n_o] =
                            filter.get(n_o, n_i, kr, kc);
                    }
                }
            }
        }

        let mut output = Tensor4::zeros(shape.output_shape(), Layout::ImageAware);
        let mut mesh: Mesh<Slot> = Mesh::new_on(self.rt, self.chip, |_, _| Slot {
            di: [LdmBuf { offset: 0, len: 0 }; 2],
            w: [LdmBuf { offset: 0, len: 0 }; 2],
            c: LdmBuf { offset: 0, len: 0 },
            di_h: [None; 2],
            w_h: [None; 2],
        });
        if let Some(fp) = self.fault {
            mesh.inject_faults(fp);
        }

        // Setup superstep: allocate LDM tiles. The filter buffer holds one
        // (kr, kc) slice (Algorithm 1 line 7 re-fetches W inside the filter
        // loops), double-buffered like the input window.
        let di_len = d.quads * d.ni8 * d.win4;
        let w_len = d.ni8 * d.no8;
        let c_len = d.no8 * d.n8;
        mesh.superstep(|ctx, s| {
            s.di = [ctx.ldm_alloc(di_len)?, ctx.ldm_alloc(di_len)?];
            s.w = [ctx.ldm_alloc(w_len)?, ctx.ldm_alloc(w_len)?];
            s.c = ctx.ldm_alloc(c_len)?;
            Ok(())
        })?;

        // One pack/payload arena reused by every GEMM rotation below, leased
        // from the execution context so repeated runs (benches, serving)
        // skip the allocations entirely.
        let mut scratch = lease_scratch(self.rt, mesh.chip.mesh_dim);

        for tile_b in 0..shape.batch / b_b {
            for r_o in 0..ro {
                for tile_c in 0..co / b_co {
                    let co0 = tile_c * b_co;
                    zero_c(&mut mesh, |s: &Slot| s.c)?;

                    // §IV-A channel blocking: the reduction over Ni runs in
                    // `ni_blocks` passes, each keeping b_Ni channels in LDM
                    // and accumulating into the resident output tile.
                    for ni_blk in 0..ni_blocks {
                        for kr in 0..kr_n {
                            let didx = ni_blk * kr_n + kr;
                            let di_par = didx % 2;
                            // Input-window superstep: prefetch the next
                            // (ni-block, kr) window, wait for the current one.
                            mesh.superstep(|ctx, s| {
                                let issue_di = |ctx: &mut sw_sim::CpeCtx<'_>,
                                            s: &mut Slot,
                                            didx_x: usize|
                             -> Result<(), sw_sim::SimError> {
                                let (blk_x, kr_x) = (didx_x / kr_n, didx_x % kr_n);
                                let r_i = r_o + kr_x;
                                let mut last = None;
                                for q in 0..d.quads {
                                    let gq = (tile_b * b_b) / 4 + ctx.col * d.quads + q;
                                    let ni0 = blk_x * b_ni + ctx.row * d.ni8;
                                    let src_off =
                                        (((gq * ni + ni0) * ri + r_i) * ci + co0) * 4;
                                    let h = ctx.dma_get_strided(
                                        s.di[didx_x % 2],
                                        q * d.ni8 * d.win4,
                                        in_data,
                                        src_off,
                                        d.ni8,
                                        ri * ci * 4,
                                        d.win4,
                                    )?;
                                    last = Some(h);
                                }
                                s.di_h[didx_x % 2] = last;
                                Ok(())
                            };
                                if self.double_buffer {
                                    if didx == 0 {
                                        issue_di(ctx, s, 0)?;
                                    }
                                    if didx + 1 < ni_blocks * kr_n {
                                        issue_di(ctx, s, didx + 1)?;
                                    }
                                } else {
                                    issue_di(ctx, s, didx)?;
                                }
                                if let Some(h) = s.di_h[di_par].take() {
                                    ctx.dma_wait(h);
                                }
                                Ok(())
                            })?;

                            for kc in 0..kc_n {
                                let idx = (ni_blk * kr_n + kr) * kc_n + kc;
                                let w_par = idx % 2;
                                // Filter-slice superstep: issue W(idx) on first
                                // use, prefetch W(idx+1), wait W(idx).
                                mesh.superstep(|ctx, s| {
                                    let issue_w = |ctx: &mut sw_sim::CpeCtx<'_>,
                                               s: &mut Slot,
                                               idx_x: usize|
                                 -> Result<(), sw_sim::SimError> {
                                    let blk_x = idx_x / (kr_n * kc_n);
                                    let krkc_x = idx_x % (kr_n * kc_n);
                                    let ni0 = blk_x * b_ni + ctx.col * d.ni8;
                                    let src_off =
                                        (krkc_x * ni + ni0) * no + ctx.row * d.no8;
                                    let h = ctx.dma_get_strided(
                                        s.w[idx_x % 2],
                                        0,
                                        &w_flat,
                                        src_off,
                                        d.ni8,
                                        no,
                                        d.no8,
                                    )?;
                                    s.w_h[idx_x % 2] = Some(h);
                                    Ok(())
                                };
                                    if self.double_buffer {
                                        if idx == 0 {
                                            issue_w(ctx, s, 0)?;
                                        }
                                        if idx + 1 < ni_blocks * kr_n * kc_n {
                                            issue_w(ctx, s, idx + 1)?;
                                        }
                                    } else {
                                        issue_w(ctx, s, idx)?;
                                    }
                                    if let Some(h) = s.w_h[w_par].take() {
                                        ctx.dma_wait(h);
                                    }
                                    Ok(())
                                })?;
                                let par = di_par;
                                regcomm_gemm_with(
                                    &mut mesh,
                                    GemmBlock {
                                        m8: d.no8,
                                        n8: d.n8,
                                        k8: d.ni8,
                                        c_stride: d.n8,
                                        reordered: self.reordered_kernel,
                                    },
                                    &mut scratch,
                                    // A block: the (ni8 x no8) slice for this (kr, kc).
                                    move |ctx, s: &Slot, dst: &mut Vec<f64>| {
                                        dst.extend_from_slice(ctx.ldm(s.w[w_par]));
                                    },
                                    // B block: shifted window, packed k-major.
                                    move |ctx, s: &Slot, dst: &mut Vec<f64>| {
                                        let di = ctx.ldm(s.di[par]);
                                        for k in 0..d.ni8 {
                                            for q in 0..d.quads {
                                                let base = q * d.ni8 * d.win4 + k * d.win4 + 4 * kc;
                                                dst.extend_from_slice(&di[base..base + 4 * d.b_co]);
                                            }
                                        }
                                    },
                                    |s: &Slot| (s.c, 0),
                                )?;
                            }
                        }
                    }

                    // Store the output tile.
                    mesh.superstep(|ctx, s| {
                        let mut last = None;
                        for q in 0..d.quads {
                            let gq = (tile_b * b_b) / 4 + ctx.col * d.quads + q;
                            let dst_off = (((gq * no + ctx.row * d.no8) * ro + r_o) * co + co0) * 4;
                            let h = ctx.dma_put_scatter(
                                s.c,
                                q * 4 * d.b_co,
                                d.n8,
                                dst_off,
                                ro * co * 4,
                                d.no8,
                                4 * d.b_co,
                            )?;
                            last = Some(h);
                        }
                        if let Some(h) = last {
                            ctx.dma_wait(h);
                        }
                        Ok(())
                    })?;
                }
            }
        }

        mesh.drain_puts(output.data_mut())?;
        mesh.assert_inboxes_empty()?;
        let stats = mesh.stats();
        Ok(ConvRun {
            output,
            timing: PlanTiming {
                cycles: stats.cycles,
                stats,
                sampled: false,
                modeled: false,
            },
        })
    }

    fn time_full_shape(&self, shape: &ConvShape) -> Result<PlanTiming, SwdnnError> {
        self.supports(shape)?;
        let Blocking { b_b, b_co } = self.blocking;
        let reduced = |n_ro: usize| ConvShape {
            batch: b_b,
            ni: shape.ni,
            no: shape.no,
            ro: n_ro,
            co: b_co,
            kr: shape.kr,
            kc: shape.kc,
        };
        let run = |s: &ConvShape| -> Result<PlanTiming, SwdnnError> {
            let input = sw_tensor::init::seeded_tensor(s.input_shape(), Layout::ImageAware, 11);
            let filter = sw_tensor::init::seeded_tensor(s.filter_shape(), Layout::Nchw, 12);
            Ok(self.run(s, &input, &filter)?.timing)
        };
        let t1 = run(&reduced(1))?;
        let t2 = run(&reduced(2))?;
        let n_full = (shape.batch / b_b) as u64 * shape.ro as u64 * (shape.co / b_co) as u64;
        Ok(extrapolate(&t1, 1, &t2, 2, n_full))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::init::lattice_tensor;
    use sw_tensor::{conv2d_ref, init::seeded_tensor};

    fn small_shape() -> ConvShape {
        // bB must be a multiple of 32; keep the rest small.
        ConvShape::new(32, 8, 8, 4, 8, 3, 3)
    }

    fn plan() -> ImageAwarePlan {
        ImageAwarePlan::new(Blocking { b_b: 32, b_co: 4 })
    }

    #[test]
    fn matches_reference_exactly_on_lattice_data() {
        let shape = small_shape();
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 3);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 4);
        let expect = conv2d_ref(shape, &input, &filter);
        let run = plan().run(&shape, &input, &filter).unwrap();
        assert_eq!(run.output.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn matches_reference_closely_on_random_data() {
        let shape = ConvShape::new(32, 16, 8, 3, 8, 2, 2);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 5);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 6);
        let expect = conv2d_ref(shape, &input, &filter);
        let run = ImageAwarePlan::new(Blocking { b_b: 32, b_co: 4 })
            .run(&shape, &input, &filter)
            .unwrap();
        assert!(run.output.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn unsupported_shapes_are_rejected() {
        let p = plan();
        // Ni not a multiple of 8.
        assert!(p.supports(&ConvShape::new(32, 7, 8, 4, 8, 3, 3)).is_err());
        // batch not divisible by b_b.
        assert!(p.supports(&ConvShape::new(48, 8, 8, 4, 8, 3, 3)).is_err());
        // co not divisible by b_co.
        assert!(p.supports(&ConvShape::new(32, 8, 8, 4, 6, 3, 3)).is_err());
        assert!(p.supports(&small_shape()).is_ok());
    }

    #[test]
    fn timing_is_sane_and_flops_exact() {
        let shape = small_shape();
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 7);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 8);
        let run = plan().run(&shape, &input, &filter).unwrap();
        assert!(run.timing.cycles > 0);
        // GEMM flops = 2*B*No*Ro*Co*Ni per (kr,kc) => exactly shape.flops().
        assert_eq!(run.timing.stats.totals.flops, shape.flops());
    }

    #[test]
    fn sampled_timing_tracks_full_timing() {
        // On a shape small enough to run fully, the sampled extrapolation
        // must agree with the full simulation within a few percent.
        let shape = ConvShape::new(32, 8, 8, 6, 8, 3, 3);
        let p = plan();
        let full = {
            let input = seeded_tensor(shape.input_shape(), Layout::ImageAware, 1);
            let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 2);
            p.run(&shape, &input, &filter).unwrap().timing
        };
        let sampled = p.time_full_shape(&shape).unwrap();
        let rel = (sampled.cycles as f64 - full.cycles as f64).abs() / full.cycles as f64;
        assert!(
            rel < 0.05,
            "sampled {} vs full {} ({rel:.3})",
            sampled.cycles,
            full.cycles
        );
        assert!(sampled.sampled);
    }

    #[test]
    fn ni_blocking_matches_unblocked_exactly() {
        let shape = ConvShape::new(32, 16, 8, 3, 8, 3, 3);
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 71);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 72);
        let full = plan().run(&shape, &input, &filter).unwrap();
        let blocked = plan()
            .with_ni_blocking(8)
            .run(&shape, &input, &filter)
            .unwrap();
        assert_eq!(blocked.output.max_abs_diff(&full.output), 0.0);
        // Blocking trades extra filter traffic for a smaller footprint.
        assert!(
            blocked.timing.stats.totals.dma_get_bytes >= full.timing.stats.totals.dma_get_bytes
        );
    }

    #[test]
    fn ni_blocking_reduces_ldm_footprint() {
        let shape = ConvShape::new(128, 512, 512, 64, 64, 3, 3);
        let unblocked = ImageAwarePlan::new(Blocking { b_b: 32, b_co: 4 });
        assert!(
            unblocked.supports(&shape).is_err(),
            "512x512 must overflow LDM"
        );
        let blocked = unblocked.with_ni_blocking(128);
        assert!(
            blocked.supports(&shape).is_ok(),
            "b_Ni=128 must fit: {} doubles",
            blocked.ldm_doubles(&shape)
        );
    }

    #[test]
    fn ni_blocked_512_channel_conv_runs_correctly_small() {
        // Functional check of the blocked path on a shape with several
        // ni-blocks (small spatial size keeps it fast).
        let shape = ConvShape::new(32, 32, 8, 2, 4, 2, 2);
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 73);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 74);
        let expect = sw_tensor::conv2d_ref(shape, &input, &filter);
        let run = ImageAwarePlan::new(Blocking { b_b: 32, b_co: 4 })
            .with_ni_blocking(8)
            .run(&shape, &input, &filter)
            .unwrap();
        assert_eq!(run.output.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn synchronous_dma_ablation_is_slower_but_correct() {
        let shape = small_shape();
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 91);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 92);
        let buffered = plan().run(&shape, &input, &filter).unwrap();
        let mut sync_plan = plan();
        sync_plan.double_buffer = false;
        let sync = sync_plan.run(&shape, &input, &filter).unwrap();
        assert_eq!(sync.output.max_abs_diff(&buffered.output), 0.0);
        assert!(
            sync.timing.cycles > buffered.timing.cycles,
            "sync {} vs buffered {}",
            sync.timing.cycles,
            buffered.timing.cycles
        );
        // Stall accounting must show where the loss went.
        assert!(
            sync.timing.stats.totals.dma_stall_cycles
                > buffered.timing.stats.totals.dma_stall_cycles
        );
    }

    #[test]
    fn naive_kernel_ablation_is_slower() {
        let shape = small_shape();
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 9);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 10);
        let fast = plan().run(&shape, &input, &filter).unwrap();
        let mut slowp = plan();
        slowp.reordered_kernel = false;
        let slow = slowp.run(&shape, &input, &filter).unwrap();
        assert!(slow.timing.cycles > fast.timing.cycles);
        assert_eq!(slow.output.max_abs_diff(&fast.output), 0.0);
    }
}
