//! The register-communication GEMM on the 8×8 CPE mesh (§V-A, Fig. 3).
//!
//! Computes a distributed update `C += Aᵀ·B` where
//!
//! * `A` (filters) is blocked `(k, m)`: CPE `(i, j)` owns rows
//!   `m ∈ chunk_i`, reduction slice `k ∈ chunk_j`,
//! * `B` (image pixels) is blocked `(k, n)`: CPE `(i, j)` owns
//!   `k ∈ chunk_i`, pixels `n ∈ chunk_j`,
//! * `C` (outputs) is blocked `(m, n)`: CPE `(i, j)` owns `m ∈ chunk_i`,
//!   `n ∈ chunk_j`.
//!
//! Round `r` (of 8): CPEs in mesh **column r** broadcast their `A` block
//! along their row bus; CPEs in mesh **row r** broadcast their `B` block
//! along their column bus; every CPE then accumulates
//! `C(i,j) += A(i,r)ᵀ · B(r,j)`. After 8 rounds each CPE holds its complete
//! `C` block having stored no duplicated operand data in LDM — the scheme
//! that "reduces the memory bandwidth requirement for almost an order of
//! magnitude".
//!
//! Compute time is charged per register tile from the §VI software-pipelined
//! kernel model (`crate::kernel_cost`); communication time is charged by the
//! mesh's put/get accounting.
//!
//! # Host-side hot path
//!
//! This rotation is where the simulator spends nearly all of its host
//! time, so it is organised around these invariants (see DESIGN.md §8 and
//! §14):
//!
//! * **Pack once.** Each rotation's broadcast phase runs as a *serial*
//!   superstep: every broadcaster packs its block exactly once into a
//!   reused scratch buffer ([`GemmScratch`]) and hands the mesh a shared
//!   `Arc<[f64]>` payload. The broadcaster keeps a clone of the same
//!   payload for its own phase-2 accumulation, so nothing is packed (or
//!   allocated) twice.
//! * **Zero-copy delivery.** Receivers take the shared payload by
//!   reference count ([`sw_sim::CpeCtx::recv_row_shared`]); one broadcast
//!   is one allocation, not eight.
//! * **Leased payloads.** Broadcast payloads come from a
//!   [`sw_runtime::PayloadPool`] free-list in the scratch: after a
//!   two-rotation warmup every broadcast refills a recycled buffer
//!   (`copy_from_slice` — byte-identical to a fresh `Arc::from`) instead
//!   of allocating.
//! * **Fused supersteps.** The whole `dim`-round rotation runs as one
//!   [`sw_sim::Mesh::superstep_rounds`] batch — one worker-pool handoff
//!   per rotation instead of one per parallel superstep. The unfused
//!   two-supersteps-per-round loop stays available as a comparison arm
//!   via [`force_unfused`] or `SWDNN_UNFUSED=1`.
//! * **Register-tiled microkernel.** The accumulation uses a 4×8
//!   register-blocked kernel (the host-side analogue of the paper's
//!   `rb_B`×`rb_No` register blocking) that accumulates each C element in
//!   k-ascending order — bit-identical to the scalar reference kernel,
//!   which stays available for A/B testing via
//!   [`force_reference_microkernel`] or `SWDNN_SCALAR_KERNEL=1`.
//!
//! None of this changes simulated time: cycle charges, fault keying, and
//! superstep counts are identical to the naive two-parallel-superstep
//! formulation.

use crate::error::SwdnnError;
use crate::kernel_cost;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use sw_runtime::PayloadPool;
use sw_sim::{CpeCtx, LdmBuf, Mesh, SimError};

/// Shape of the distributed GEMM (per-CPE block sizes).
#[derive(Clone, Copy, Debug)]
pub struct GemmBlock {
    /// Rows of C per CPE (`No/8`).
    pub m8: usize,
    /// Columns of C per CPE (pixels).
    pub n8: usize,
    /// Reduction elements per rotation round (`Ni/8`).
    pub k8: usize,
    /// Row stride of the C block in LDM (`>= n8`; lets a GEMM update a
    /// column slice of a wider accumulator).
    pub c_stride: usize,
    /// Price compute with the reordered (software-pipelined) kernel?
    pub reordered: bool,
}

impl GemmBlock {
    /// A dense block: stride equals width.
    pub fn dense(m8: usize, n8: usize, k8: usize, reordered: bool) -> Self {
        Self {
            m8,
            n8,
            k8,
            c_stride: n8,
            reordered,
        }
    }
}

/// Reusable host-side scratch for [`regcomm_gemm_with`]: the pack buffer
/// every broadcaster packs into, plus the per-row/per-column shared
/// payloads the broadcasters keep for their own phase-2 accumulation.
/// Create one per plan (sized by the mesh dimension) and reuse it across
/// every GEMM invocation — after the first rotation the hot path
/// allocates only the one `Arc` per broadcast.
pub struct GemmScratch {
    pack: Vec<f64>,
    a_own: Vec<Option<Arc<[f64]>>>,
    b_own: Vec<Option<Arc<[f64]>>>,
    /// Free-list the broadcast payloads are leased from: a broadcaster
    /// replacing its kept payload recycles the old one here, so a steady
    /// rotation allocates nothing after a two-rotation warmup.
    pool: PayloadPool,
}

impl GemmScratch {
    /// Scratch for a `dim`×`dim` mesh.
    pub fn new(dim: usize) -> Self {
        Self {
            pack: Vec::new(),
            a_own: vec![None; dim],
            b_own: vec![None; dim],
            pool: PayloadPool::new(),
        }
    }

    /// The broadcast-payload free-list (counters are what tests assert).
    pub fn payload_pool(&self) -> &PayloadPool {
        &self.pool
    }
}

/// Lease a [`GemmScratch`] for a `dim`×`dim` mesh from the execution
/// context's scratch arena. The lease hands the (grown) buffers back on
/// drop, so repeated plan runs — benches, the serving warm path — reuse
/// one arena per mesh dimension instead of reallocating per run. Stale
/// payload `Arc`s from a previous lease are harmless: every rotation
/// round overwrites `a_own`/`b_own` before phase 2 reads them.
pub fn lease_scratch(
    rt: &'static sw_runtime::ExecutionContext,
    dim: usize,
) -> sw_runtime::ScratchLease<'static, GemmScratch> {
    rt.scratch(dim, || GemmScratch::new(dim))
}

/// Force every subsequent GEMM to use the scalar reference microkernel
/// (for A/B-testing the register-tiled kernel; both produce bit-identical
/// output). The `SWDNN_SCALAR_KERNEL` environment variable (any value but
/// `0`) has the same effect.
pub fn force_reference_microkernel(on: bool) {
    FORCE_REFERENCE.store(on, Ordering::SeqCst);
}

/// Whether the scalar reference microkernel is currently forced.
pub fn reference_microkernel_forced() -> bool {
    FORCE_REFERENCE.load(Ordering::SeqCst)
        || std::env::var_os("SWDNN_SCALAR_KERNEL").is_some_and(|v| v != "0")
}

static FORCE_REFERENCE: AtomicBool = AtomicBool::new(false);

/// Force every subsequent GEMM to run the unfused formulation — two pool
/// handoffs per rotation round instead of one per rotation (for A/B
/// comparison against the fused [`sw_sim::Mesh::superstep_rounds`] path;
/// both are bit-identical in simulated time and output). The
/// `SWDNN_UNFUSED` environment variable (any value but `0`) has the same
/// effect.
pub fn force_unfused(on: bool) {
    FORCE_UNFUSED.store(on, Ordering::SeqCst);
}

/// Whether the unfused superstep loop is currently forced.
pub fn unfused_forced() -> bool {
    FORCE_UNFUSED.load(Ordering::SeqCst)
        || std::env::var_os("SWDNN_UNFUSED").is_some_and(|v| v != "0")
}

static FORCE_UNFUSED: AtomicBool = AtomicBool::new(false);

/// Run one full 8-round rotation.
///
/// `pack_a(ctx, s, dst)` appends this CPE's `A` block packed k-major
/// (`a[k*m8 + m]`) to `dst` (handed in empty), `pack_b` its `B` block
/// packed k-major (`b[k*n8 + n]`), and `c_buf(s)` the LDM buffer of its
/// `C` block plus a starting offset within it; C is m-major with row
/// stride `blk.c_stride` (`c[off + m*c_stride + n]`).
///
/// Each pack closure is invoked exactly once per broadcaster per rotation
/// round. Convenience wrapper over [`regcomm_gemm_with`] that leases a
/// [`GemmScratch`] from the mesh's execution context; plans issuing many
/// GEMMs should hold a lease across the whole run.
pub fn regcomm_gemm<S, FA, FB, FC>(
    mesh: &mut Mesh<S>,
    blk: GemmBlock,
    pack_a: FA,
    pack_b: FB,
    c_buf: FC,
) -> Result<(), SwdnnError>
where
    S: Send,
    FA: Fn(&CpeCtx<'_>, &S, &mut Vec<f64>) + Sync,
    FB: Fn(&CpeCtx<'_>, &S, &mut Vec<f64>) + Sync,
    FC: Fn(&S) -> (LdmBuf, usize) + Sync,
{
    let mut scratch = lease_scratch(mesh.runtime(), mesh.chip.mesh_dim);
    regcomm_gemm_with(mesh, blk, &mut scratch, pack_a, pack_b, c_buf)
}

/// [`regcomm_gemm`] with caller-owned scratch (the allocation-free form).
pub fn regcomm_gemm_with<S, FA, FB, FC>(
    mesh: &mut Mesh<S>,
    blk: GemmBlock,
    scratch: &mut GemmScratch,
    pack_a: FA,
    pack_b: FB,
    c_buf: FC,
) -> Result<(), SwdnnError>
where
    S: Send,
    FA: Fn(&CpeCtx<'_>, &S, &mut Vec<f64>) + Sync,
    FB: Fn(&CpeCtx<'_>, &S, &mut Vec<f64>) + Sync,
    FC: Fn(&S) -> (LdmBuf, usize) + Sync,
{
    let dim = mesh.chip.mesh_dim;
    assert!(
        scratch.a_own.len() >= dim && scratch.b_own.len() >= dim,
        "GemmScratch sized for a smaller mesh"
    );
    let use_reference = reference_microkernel_forced();

    // Both arms below share these two phase closures verbatim, so fused
    // and unfused runs are the same program modulo handoff count. The
    // fused path runs them from worker lanes under `Fn + Sync` bounds, so
    // the mutable scratch lives behind a mutex — uncontended in practice:
    // the pack phase is a one-slot step, and the compute phase locks only
    // on the one broadcaster per row/column that reuses its kept payload.
    struct Shared<'a> {
        pack: &'a mut Vec<f64>,
        a_own: &'a mut Vec<Option<Arc<[f64]>>>,
        b_own: &'a mut Vec<Option<Arc<[f64]>>>,
        pool: &'a mut PayloadPool,
    }
    let shared = Mutex::new(Shared {
        pack: &mut scratch.pack,
        a_own: &mut scratch.a_own,
        b_own: &mut scratch.b_own,
        pool: &mut scratch.pool,
    });

    // Phase 1 of round `r` (serial — the work is 16 packs, not worth a
    // thread fan-out): the broadcasting column/row pack once and put
    // leased shared payloads on the buses, keeping a clone for their own
    // phase 2. The payload they kept last rotation is recycled into the
    // pool in exchange.
    let pack_phase = |r: usize, ctx: &mut CpeCtx<'_>, s: &mut S| -> Result<(), SimError> {
        if ctx.col != r && ctx.row != r {
            return Ok(());
        }
        let mut guard = shared.lock().unwrap();
        let g = &mut *guard;
        if ctx.col == r {
            g.pack.clear();
            pack_a(ctx, s, g.pack);
            debug_assert_eq!(g.pack.len(), blk.k8 * blk.m8, "A block size");
            let payload = g.pool.lease_from(g.pack);
            ctx.bcast_row_shared(Arc::clone(&payload));
            if let Some(old) = g.a_own[ctx.row].replace(payload) {
                g.pool.recycle(old);
            }
        }
        if ctx.row == r {
            g.pack.clear();
            pack_b(ctx, s, g.pack);
            debug_assert_eq!(g.pack.len(), blk.k8 * blk.n8, "B block size");
            let payload = g.pool.lease_from(g.pack);
            ctx.bcast_col_shared(Arc::clone(&payload));
            if let Some(old) = g.b_own[ctx.col].replace(payload) {
                g.pool.recycle(old);
            }
        }
        Ok(())
    };

    // Phase 2 of round `r`: everyone receives (or reuses its own block)
    // and accumulates.
    let compute_phase = |r: usize, ctx: &mut CpeCtx<'_>, s: &mut S| -> Result<(), SimError> {
        let a = if ctx.col == r {
            shared.lock().unwrap().a_own[ctx.row]
                .clone()
                .ok_or_else(|| missing_own_block(ctx, 'A', r))?
        } else {
            ctx.recv_row_shared()?
        };
        let b = if ctx.row == r {
            shared.lock().unwrap().b_own[ctx.col]
                .clone()
                .ok_or_else(|| missing_own_block(ctx, 'B', r))?
        } else {
            ctx.recv_col_shared()?
        };
        if a.len() != blk.k8 * blk.m8 || b.len() != blk.k8 * blk.n8 {
            return Err(SimError::Program(format!(
                "GEMM block mismatch at CPE({},{}): a={} b={} expected {}x{} {}x{}",
                ctx.row,
                ctx.col,
                a.len(),
                b.len(),
                blk.k8,
                blk.m8,
                blk.k8,
                blk.n8
            )));
        }
        let (cb, c_off) = c_buf(s);
        let (m8, n8, k8, cs) = (blk.m8, blk.n8, blk.k8, blk.c_stride);
        debug_assert!(c_off + (m8 - 1) * cs + n8 <= cb.len, "C slice in bounds");
        let c = &mut ctx.ldm_data_mut()[cb.range()];
        if use_reference {
            microkernel_reference(c, c_off, cs, &a, &b, m8, n8, k8);
        } else {
            microkernel_tiled(c, c_off, cs, &a, &b, m8, n8, k8);
        }
        let prof = kernel_cost::block_profile(m8, n8, k8, blk.reordered);
        ctx.charge_compute(prof.cycles);
        ctx.add_flops(kernel_cost::block_flops(m8, n8, k8));
        ctx.add_ldm_reg_bytes(prof.ldm_load_bytes + prof.ldm_store_bytes);
        ctx.add_issue_slots(prof.p0_slots, prof.p1_slots);
        Ok(())
    };

    if unfused_forced() {
        // Comparison arm: one serial + one parallel superstep per round —
        // `2 * dim` handoff opportunities per rotation.
        for r in 0..dim {
            mesh.superstep_serial(|ctx, s| pack_phase(r, ctx, s))?;
            mesh.superstep(|ctx, s| compute_phase(r, ctx, s))?;
        }
    } else {
        // Fused: the whole rotation is one superstep batch — one pool
        // handoff regardless of `dim`.
        mesh.superstep_rounds(dim, &pack_phase, &compute_phase)?;
    }
    Ok(())
}

fn missing_own_block(ctx: &CpeCtx<'_>, which: char, round: usize) -> SimError {
    SimError::Program(format!(
        "CPE({},{}) has no packed {which} block for round {round}",
        ctx.row, ctx.col
    ))
}

/// Scalar reference kernel: the plain triple loop. Kept as the bitwise
/// ground truth the tiled kernel is tested against, and selectable at run
/// time for host-performance A/B runs.
#[allow(clippy::too_many_arguments)] // BLAS-style kernel signature
fn microkernel_reference(
    c: &mut [f64],
    c_off: usize,
    cs: usize,
    a: &[f64],
    b: &[f64],
    m8: usize,
    n8: usize,
    k8: usize,
) {
    for k in 0..k8 {
        let arow = &a[k * m8..(k + 1) * m8];
        let brow = &b[k * n8..(k + 1) * n8];
        for (m, &av) in arow.iter().enumerate() {
            let base = c_off + m * cs;
            let crow = &mut c[base..base + n8];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// One MR×NR register tile: load the C sub-block, accumulate all of `k8`
/// in registers, store once. Each C element still sees `c += a*b` in
/// k-ascending order with separate multiply and add, so the result is
/// bit-identical to [`microkernel_reference`] (no FMA, no reassociation);
/// the win is purely fewer loads/stores and accumulator arrays the
/// autovectorizer maps onto vector registers.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // BLAS-style kernel signature
fn tile<const MR: usize, const NR: usize>(
    c: &mut [f64],
    c_base: usize,
    cs: usize,
    a: &[f64],
    b: &[f64],
    m0: usize,
    n0: usize,
    m8: usize,
    n8: usize,
    k8: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for (mi, row) in acc.iter_mut().enumerate() {
        let base = c_base + mi * cs;
        row.copy_from_slice(&c[base..base + NR]);
    }
    for (arow, brow) in a.chunks_exact(m8).zip(b.chunks_exact(n8)).take(k8) {
        let av: [f64; MR] = arow[m0..m0 + MR].try_into().unwrap();
        let bv: [f64; NR] = brow[n0..n0 + NR].try_into().unwrap();
        for (row, &am) in acc.iter_mut().zip(&av) {
            for (cv, &bn) in row.iter_mut().zip(&bv) {
                *cv += am * bn;
            }
        }
    }
    for (mi, row) in acc.iter().enumerate() {
        let base = c_base + mi * cs;
        c[base..base + NR].copy_from_slice(row);
    }
}

/// One row-band of tiles: MR C rows, swept across n in 8-, then 4-, then
/// 1-wide column tiles.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // BLAS-style kernel signature
fn row_tiles<const MR: usize>(
    c: &mut [f64],
    c_off: usize,
    cs: usize,
    a: &[f64],
    b: &[f64],
    m0: usize,
    m8: usize,
    n8: usize,
    k8: usize,
) {
    let mut n0 = 0;
    while n0 + 8 <= n8 {
        tile::<MR, 8>(c, c_off + m0 * cs + n0, cs, a, b, m0, n0, m8, n8, k8);
        n0 += 8;
    }
    while n0 + 4 <= n8 {
        tile::<MR, 4>(c, c_off + m0 * cs + n0, cs, a, b, m0, n0, m8, n8, k8);
        n0 += 4;
    }
    while n0 < n8 {
        tile::<MR, 1>(c, c_off + m0 * cs + n0, cs, a, b, m0, n0, m8, n8, k8);
        n0 += 1;
    }
}

/// Tile sweep shared by every instruction-set version of the kernel.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // BLAS-style kernel signature
fn microkernel_tiled_impl(
    c: &mut [f64],
    c_off: usize,
    cs: usize,
    a: &[f64],
    b: &[f64],
    m8: usize,
    n8: usize,
    k8: usize,
) {
    const MR: usize = 4;
    let m_main = m8 - m8 % MR;
    let mut m0 = 0;
    while m0 < m_main {
        row_tiles::<MR>(c, c_off, cs, a, b, m0, m8, n8, k8);
        m0 += MR;
    }
    while m0 < m8 {
        row_tiles::<1>(c, c_off, cs, a, b, m0, m8, n8, k8);
        m0 += 1;
    }
}

/// AVX2 compilation of the same tile sweep. `#[target_feature]` recompiles
/// the (fully inlined) generic tiles with 256-bit vectors without raising
/// the whole binary's baseline — portability is preserved because callers
/// go through the runtime dispatch in [`microkernel_tiled`]. The math is
/// element-wise identical (separate mul and add; Rust never contracts to
/// FMA by default), so wider registers cannot change a single bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // BLAS-style kernel signature
fn microkernel_tiled_avx2(
    c: &mut [f64],
    c_off: usize,
    cs: usize,
    a: &[f64],
    b: &[f64],
    m8: usize,
    n8: usize,
    k8: usize,
) {
    microkernel_tiled_impl(c, c_off, cs, a, b, m8, n8, k8);
}

/// Register-tiled microkernel: 4×8 main tiles (8 vector accumulators of 4
/// doubles on a 256-bit host) with 4- and 1-wide edge tiles. Dispatches
/// once per call on runtime CPU feature detection (a cached atomic load).
#[allow(clippy::too_many_arguments)] // BLAS-style kernel signature
fn microkernel_tiled(
    c: &mut [f64],
    c_off: usize,
    cs: usize,
    a: &[f64],
    b: &[f64],
    m8: usize,
    n8: usize,
    k8: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check above.
        unsafe { microkernel_tiled_avx2(c, c_off, cs, a, b, m8, n8, k8) };
        return;
    }
    microkernel_tiled_impl(c, c_off, cs, a, b, m8, n8, k8);
}

/// Zero a distributed C block (one superstep; charged as vector stores).
pub fn zero_c<S: Send>(
    mesh: &mut Mesh<S>,
    c_buf: impl Fn(&S) -> LdmBuf + Sync,
) -> Result<(), SwdnnError> {
    mesh.superstep(|ctx, s| {
        let cb = c_buf(s);
        let c = &mut ctx.ldm_data_mut()[cb.range()];
        c.iter_mut().for_each(|v| *v = 0.0);
        let vectors = cb.len.div_ceil(4) as u64;
        ctx.charge_compute(vectors);
        ctx.add_ldm_reg_bytes(32 * vectors);
        ctx.add_issue_slots(0, vectors);
        Ok(())
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use sw_perfmodel::ChipSpec;

    /// Per-CPE state: own blocks of A, B and the C accumulator buffer.
    struct St {
        a: Vec<f64>, // k-major (k8 x m8)
        b: Vec<f64>, // k-major (k8 x n8)
        c: LdmBuf,
    }

    /// Dense reference: C = A^T B with A (K x M), B (K x N).
    fn host_gemm(a: &[f64], b: &[f64], big_m: usize, big_n: usize, big_k: usize) -> Vec<f64> {
        let mut c = vec![0.0; big_m * big_n];
        for k in 0..big_k {
            for m in 0..big_m {
                let av = a[k * big_m + m];
                for n in 0..big_n {
                    c[m * big_n + n] += av * b[k * big_n + n];
                }
            }
        }
        c
    }

    #[test]
    fn distributed_gemm_matches_host_gemm() {
        let (m8, n8, k8) = (4, 8, 2);
        let (big_m, big_n, big_k) = (m8 * 8, n8 * 8, k8 * 8);
        // Global operands, k-major.
        let a: Vec<f64> = (0..big_k * big_m)
            .map(|i| ((i * 7 + 3) % 11) as f64 - 5.0)
            .collect();
        let b: Vec<f64> = (0..big_k * big_n)
            .map(|i| ((i * 5 + 1) % 13) as f64 - 6.0)
            .collect();
        let expect = host_gemm(&a, &b, big_m, big_n, big_k);

        let mut mesh = Mesh::new(ChipSpec::sw26010(), |row, col| {
            // CPE(i,j): A block rows m in chunk_i, k in chunk_j;
            //           B block k in chunk_i, n in chunk_j.
            let mut ab = Vec::with_capacity(k8 * m8);
            for k in 0..k8 {
                for m in 0..m8 {
                    ab.push(a[(col * k8 + k) * big_m + row * m8 + m]);
                }
            }
            let mut bb = Vec::with_capacity(k8 * n8);
            for k in 0..k8 {
                for n in 0..n8 {
                    bb.push(b[(row * k8 + k) * big_n + col * n8 + n]);
                }
            }
            St {
                a: ab,
                b: bb,
                c: LdmBuf { offset: 0, len: 0 },
            }
        });
        mesh.superstep(|ctx, s| {
            s.c = ctx.ldm_alloc(m8 * n8)?;
            Ok(())
        })
        .unwrap();
        zero_c(&mut mesh, |s: &St| s.c).unwrap();
        regcomm_gemm(
            &mut mesh,
            GemmBlock::dense(m8, n8, k8, true),
            |_, s: &St, dst: &mut Vec<f64>| dst.extend_from_slice(&s.a),
            |_, s: &St, dst: &mut Vec<f64>| dst.extend_from_slice(&s.b),
            |s| (s.c, 0),
        )
        .unwrap();

        // Collect C blocks and compare.
        let mut got = vec![f64::NAN; big_m * big_n];
        mesh.superstep(|ctx, s| {
            // put via DMA so drain_puts assembles the global matrix
            for m in 0..m8 {
                ctx.dma_put(s.c, m * n8, (ctx.row * m8 + m) * big_n + ctx.col * n8, n8)?;
            }
            Ok(())
        })
        .unwrap();
        mesh.drain_puts(&mut got).unwrap();
        mesh.assert_inboxes_empty().unwrap();
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g, e);
        }
    }

    #[test]
    fn gemm_charges_compute_and_bus_traffic() {
        let (m8, n8, k8) = (4, 16, 8);
        let mut mesh = Mesh::new(ChipSpec::sw26010(), |_, _| St {
            a: vec![1.0; k8 * m8],
            b: vec![2.0; k8 * n8],
            c: LdmBuf { offset: 0, len: 0 },
        });
        mesh.superstep(|ctx, s| {
            s.c = ctx.ldm_alloc(m8 * n8)?;
            Ok(())
        })
        .unwrap();
        zero_c(&mut mesh, |s: &St| s.c).unwrap();
        regcomm_gemm(
            &mut mesh,
            GemmBlock::dense(m8, n8, k8, true),
            |_, s: &St, dst: &mut Vec<f64>| dst.extend_from_slice(&s.a),
            |_, s: &St, dst: &mut Vec<f64>| dst.extend_from_slice(&s.b),
            |s| (s.c, 0),
        )
        .unwrap();
        let st = mesh.stats();
        // 64 CPEs x 8 rounds of (4x16 over k8=8) = 2*4*16*8 flops each.
        assert_eq!(
            st.totals.flops,
            64 * 8 * kernel_cost::block_flops(m8, n8, k8)
        );
        assert!(st.totals.bus_vectors_sent > 0);
        assert!(st.totals.bus_vectors_received > 0);
        // Every C value = sum over K=64 of 1*2.
        let mut c0 = vec![0.0; m8 * n8];
        mesh.superstep(|ctx, s| {
            if ctx.id() == 0 {
                for i in 0..m8 * n8 {
                    ctx.dma_put(s.c, i, i, 1)?;
                }
            }
            Ok(())
        })
        .unwrap();
        mesh.drain_puts(&mut c0).unwrap();
        assert!(c0.iter().all(|&v| v == 128.0));
    }

    /// Regression for the old formulation, where broadcasters packed in
    /// superstep 1 *and again* in superstep 2: every pack closure must now
    /// run exactly once per broadcaster per rotation round — 8 broadcasters
    /// × 8 rounds = 64 calls each for A and B per rotation. Also exercises
    /// the broadcast-buffer free-list: with the scratch held across
    /// rotations, the steady-state rotation must lease every payload from
    /// the pool — zero fresh allocations after warmup.
    #[test]
    fn pack_runs_exactly_once_per_broadcaster_per_round() {
        let (m8, n8, k8) = (2, 4, 2);
        let a_packs = AtomicUsize::new(0);
        let b_packs = AtomicUsize::new(0);
        let mut mesh = Mesh::new(ChipSpec::sw26010(), |_, _| St {
            a: vec![1.0; k8 * m8],
            b: vec![1.0; k8 * n8],
            c: LdmBuf { offset: 0, len: 0 },
        });
        mesh.superstep(|ctx, s| {
            s.c = ctx.ldm_alloc(m8 * n8)?;
            Ok(())
        })
        .unwrap();
        zero_c(&mut mesh, |s: &St| s.c).unwrap();
        let mut scratch = GemmScratch::new(mesh.chip.mesh_dim);
        let rotate = |scratch: &mut GemmScratch, mesh: &mut Mesh<St>| {
            regcomm_gemm_with(
                mesh,
                GemmBlock::dense(m8, n8, k8, true),
                scratch,
                |_, s: &St, dst: &mut Vec<f64>| {
                    a_packs.fetch_add(1, Ordering::Relaxed);
                    dst.extend_from_slice(&s.a);
                },
                |_, s: &St, dst: &mut Vec<f64>| {
                    b_packs.fetch_add(1, Ordering::Relaxed);
                    dst.extend_from_slice(&s.b);
                },
                |s| (s.c, 0),
            )
            .unwrap();
        };
        rotate(&mut scratch, &mut mesh);
        assert_eq!(a_packs.load(Ordering::Relaxed), 64);
        assert_eq!(b_packs.load(Ordering::Relaxed), 64);

        // Warmup rotation done (plus one more for good measure): from here
        // on every broadcast must reuse a leased buffer.
        rotate(&mut scratch, &mut mesh);
        let fresh_after_warmup = scratch.payload_pool().fresh_allocs();
        rotate(&mut scratch, &mut mesh);
        rotate(&mut scratch, &mut mesh);
        assert_eq!(
            scratch.payload_pool().fresh_allocs(),
            fresh_after_warmup,
            "steady-state rotations must allocate zero fresh payloads"
        );
        assert!(
            scratch.payload_pool().reuses() >= 2 * 128,
            "two full rotations of broadcasts served from the pool"
        );
        assert_eq!(a_packs.load(Ordering::Relaxed), 4 * 64);
        assert_eq!(b_packs.load(Ordering::Relaxed), 4 * 64);
    }

    /// The tiled kernel must be bit-identical to the scalar reference on
    /// shapes that exercise every edge-tile combination (odd m8/n8) and a
    /// strided, offset C block.
    #[test]
    fn tiled_microkernel_is_bitwise_identical_to_reference() {
        for &(m8, n8, k8) in &[(1, 1, 1), (4, 4, 3), (5, 7, 3), (9, 13, 5), (16, 4, 8)] {
            let cs = n8 + 3; // strided C
            let c_off = 2;
            let a: Vec<f64> = (0..k8 * m8)
                .map(|i| (((i * 31 + 7) % 97) as f64 - 48.0) / 7.0)
                .collect();
            let b: Vec<f64> = (0..k8 * n8)
                .map(|i| (((i * 17 + 5) % 89) as f64 - 44.0) / 5.0)
                .collect();
            let init: Vec<f64> = (0..c_off + m8 * cs)
                .map(|i| ((i % 13) as f64 - 6.0) / 3.0)
                .collect();
            let mut c_ref = init.clone();
            let mut c_tiled = init.clone();
            microkernel_reference(&mut c_ref, c_off, cs, &a, &b, m8, n8, k8);
            microkernel_tiled(&mut c_tiled, c_off, cs, &a, &b, m8, n8, k8);
            let ref_bits: Vec<u64> = c_ref.iter().map(|v| v.to_bits()).collect();
            let tiled_bits: Vec<u64> = c_tiled.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ref_bits, tiled_bits, "shape ({m8},{n8},{k8})");
        }
    }
}
