//! The register-communication GEMM on the 8×8 CPE mesh (§V-A, Fig. 3).
//!
//! Computes a distributed update `C += Aᵀ·B` where
//!
//! * `A` (filters) is blocked `(k, m)`: CPE `(i, j)` owns rows
//!   `m ∈ chunk_i`, reduction slice `k ∈ chunk_j`,
//! * `B` (image pixels) is blocked `(k, n)`: CPE `(i, j)` owns
//!   `k ∈ chunk_i`, pixels `n ∈ chunk_j`,
//! * `C` (outputs) is blocked `(m, n)`: CPE `(i, j)` owns `m ∈ chunk_i`,
//!   `n ∈ chunk_j`.
//!
//! Round `r` (of 8): CPEs in mesh **column r** broadcast their `A` block
//! along their row bus; CPEs in mesh **row r** broadcast their `B` block
//! along their column bus; every CPE then accumulates
//! `C(i,j) += A(i,r)ᵀ · B(r,j)`. After 8 rounds each CPE holds its complete
//! `C` block having stored no duplicated operand data in LDM — the scheme
//! that "reduces the memory bandwidth requirement for almost an order of
//! magnitude".
//!
//! Compute time is charged per register tile from the §VI software-pipelined
//! kernel model (`crate::kernel_cost`); communication time is charged by the
//! mesh's put/get accounting.

use crate::error::SwdnnError;
use crate::kernel_cost;
use sw_sim::{CpeCtx, LdmBuf, Mesh, SimError};

/// Shape of the distributed GEMM (per-CPE block sizes).
#[derive(Clone, Copy, Debug)]
pub struct GemmBlock {
    /// Rows of C per CPE (`No/8`).
    pub m8: usize,
    /// Columns of C per CPE (pixels).
    pub n8: usize,
    /// Reduction elements per rotation round (`Ni/8`).
    pub k8: usize,
    /// Row stride of the C block in LDM (`>= n8`; lets a GEMM update a
    /// column slice of a wider accumulator).
    pub c_stride: usize,
    /// Price compute with the reordered (software-pipelined) kernel?
    pub reordered: bool,
}

impl GemmBlock {
    /// A dense block: stride equals width.
    pub fn dense(m8: usize, n8: usize, k8: usize, reordered: bool) -> Self {
        Self {
            m8,
            n8,
            k8,
            c_stride: n8,
            reordered,
        }
    }
}

/// Run one full 8-round rotation.
///
/// `pack_a(ctx, s)` returns this CPE's `A` block packed k-major
/// (`a[k*m8 + m]`), `pack_b` its `B` block packed k-major (`b[k*n8 + n]`),
/// and `c_buf(s)` the LDM buffer of its `C` block plus a starting offset
/// within it; C is m-major with row stride `blk.c_stride`
/// (`c[off + m*c_stride + n]`).
pub fn regcomm_gemm<S, FA, FB, FC>(
    mesh: &mut Mesh<S>,
    blk: GemmBlock,
    pack_a: FA,
    pack_b: FB,
    c_buf: FC,
) -> Result<(), SwdnnError>
where
    S: Send,
    FA: Fn(&CpeCtx<'_>, &S) -> Vec<f64> + Sync,
    FB: Fn(&CpeCtx<'_>, &S) -> Vec<f64> + Sync,
    FC: Fn(&S) -> (LdmBuf, usize) + Sync,
{
    let dim = mesh.chip.mesh_dim;
    for r in 0..dim {
        // Superstep 1: the broadcasting column/row put their blocks on the
        // buses.
        mesh.superstep(|ctx, s| {
            if ctx.col == r {
                let a = pack_a(ctx, s);
                debug_assert_eq!(a.len(), blk.k8 * blk.m8, "A block size");
                ctx.bcast_row(&a);
            }
            if ctx.row == r {
                let b = pack_b(ctx, s);
                debug_assert_eq!(b.len(), blk.k8 * blk.n8, "B block size");
                ctx.bcast_col(&b);
            }
            Ok(())
        })?;

        // Superstep 2: everyone receives (or reuses its own block) and
        // accumulates.
        mesh.superstep(|ctx, s| {
            let a = if ctx.col == r {
                pack_a(ctx, s)
            } else {
                ctx.recv_row()?
            };
            let b = if ctx.row == r {
                pack_b(ctx, s)
            } else {
                ctx.recv_col()?
            };
            if a.len() != blk.k8 * blk.m8 || b.len() != blk.k8 * blk.n8 {
                return Err(SimError::Program(format!(
                    "GEMM block mismatch at CPE({},{}): a={} b={} expected {}x{} {}x{}",
                    ctx.row,
                    ctx.col,
                    a.len(),
                    b.len(),
                    blk.k8,
                    blk.m8,
                    blk.k8,
                    blk.n8
                )));
            }
            let (cb, c_off) = c_buf(s);
            let (m8, n8, k8, cs) = (blk.m8, blk.n8, blk.k8, blk.c_stride);
            debug_assert!(c_off + (m8 - 1) * cs + n8 <= cb.len, "C slice in bounds");
            let c = &mut ctx.ldm_data_mut()[cb.range()];
            for k in 0..k8 {
                let arow = &a[k * m8..(k + 1) * m8];
                let brow = &b[k * n8..(k + 1) * n8];
                for (m, &av) in arow.iter().enumerate() {
                    let base = c_off + m * cs;
                    let crow = &mut c[base..base + n8];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
            let prof = kernel_cost::block_profile(m8, n8, k8, blk.reordered);
            ctx.charge_compute(prof.cycles);
            ctx.add_flops(kernel_cost::block_flops(m8, n8, k8));
            ctx.add_ldm_reg_bytes(prof.ldm_load_bytes + prof.ldm_store_bytes);
            ctx.add_issue_slots(prof.p0_slots, prof.p1_slots);
            Ok(())
        })?;
    }
    Ok(())
}

/// Zero a distributed C block (one superstep; charged as vector stores).
pub fn zero_c<S: Send>(
    mesh: &mut Mesh<S>,
    c_buf: impl Fn(&S) -> LdmBuf + Sync,
) -> Result<(), SwdnnError> {
    mesh.superstep(|ctx, s| {
        let cb = c_buf(s);
        let c = &mut ctx.ldm_data_mut()[cb.range()];
        c.iter_mut().for_each(|v| *v = 0.0);
        let vectors = cb.len.div_ceil(4) as u64;
        ctx.charge_compute(vectors);
        ctx.add_ldm_reg_bytes(32 * vectors);
        ctx.add_issue_slots(0, vectors);
        Ok(())
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_perfmodel::ChipSpec;

    /// Per-CPE state: own blocks of A, B and the C accumulator buffer.
    struct St {
        a: Vec<f64>, // k-major (k8 x m8)
        b: Vec<f64>, // k-major (k8 x n8)
        c: LdmBuf,
    }

    /// Dense reference: C = A^T B with A (K x M), B (K x N).
    fn host_gemm(a: &[f64], b: &[f64], big_m: usize, big_n: usize, big_k: usize) -> Vec<f64> {
        let mut c = vec![0.0; big_m * big_n];
        for k in 0..big_k {
            for m in 0..big_m {
                let av = a[k * big_m + m];
                for n in 0..big_n {
                    c[m * big_n + n] += av * b[k * big_n + n];
                }
            }
        }
        c
    }

    #[test]
    fn distributed_gemm_matches_host_gemm() {
        let (m8, n8, k8) = (4, 8, 2);
        let (big_m, big_n, big_k) = (m8 * 8, n8 * 8, k8 * 8);
        // Global operands, k-major.
        let a: Vec<f64> = (0..big_k * big_m)
            .map(|i| ((i * 7 + 3) % 11) as f64 - 5.0)
            .collect();
        let b: Vec<f64> = (0..big_k * big_n)
            .map(|i| ((i * 5 + 1) % 13) as f64 - 6.0)
            .collect();
        let expect = host_gemm(&a, &b, big_m, big_n, big_k);

        let mut mesh = Mesh::new(ChipSpec::sw26010(), |row, col| {
            // CPE(i,j): A block rows m in chunk_i, k in chunk_j;
            //           B block k in chunk_i, n in chunk_j.
            let mut ab = Vec::with_capacity(k8 * m8);
            for k in 0..k8 {
                for m in 0..m8 {
                    ab.push(a[(col * k8 + k) * big_m + row * m8 + m]);
                }
            }
            let mut bb = Vec::with_capacity(k8 * n8);
            for k in 0..k8 {
                for n in 0..n8 {
                    bb.push(b[(row * k8 + k) * big_n + col * n8 + n]);
                }
            }
            St {
                a: ab,
                b: bb,
                c: LdmBuf { offset: 0, len: 0 },
            }
        });
        mesh.superstep(|ctx, s| {
            s.c = ctx.ldm_alloc(m8 * n8)?;
            Ok(())
        })
        .unwrap();
        zero_c(&mut mesh, |s: &St| s.c).unwrap();
        regcomm_gemm(
            &mut mesh,
            GemmBlock::dense(m8, n8, k8, true),
            |_, s| s.a.clone(),
            |_, s| s.b.clone(),
            |s| (s.c, 0),
        )
        .unwrap();

        // Collect C blocks and compare.
        let mut got = vec![f64::NAN; big_m * big_n];
        mesh.superstep(|ctx, s| {
            // put via DMA so drain_puts assembles the global matrix
            for m in 0..m8 {
                ctx.dma_put(s.c, m * n8, (ctx.row * m8 + m) * big_n + ctx.col * n8, n8)?;
            }
            Ok(())
        })
        .unwrap();
        mesh.drain_puts(&mut got).unwrap();
        mesh.assert_inboxes_empty().unwrap();
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g, e);
        }
    }

    #[test]
    fn gemm_charges_compute_and_bus_traffic() {
        let (m8, n8, k8) = (4, 16, 8);
        let mut mesh = Mesh::new(ChipSpec::sw26010(), |_, _| St {
            a: vec![1.0; k8 * m8],
            b: vec![2.0; k8 * n8],
            c: LdmBuf { offset: 0, len: 0 },
        });
        mesh.superstep(|ctx, s| {
            s.c = ctx.ldm_alloc(m8 * n8)?;
            Ok(())
        })
        .unwrap();
        zero_c(&mut mesh, |s: &St| s.c).unwrap();
        regcomm_gemm(
            &mut mesh,
            GemmBlock::dense(m8, n8, k8, true),
            |_, s| s.a.clone(),
            |_, s| s.b.clone(),
            |s| (s.c, 0),
        )
        .unwrap();
        let st = mesh.stats();
        // 64 CPEs x 8 rounds of (4x16 over k8=8) = 2*4*16*8 flops each.
        assert_eq!(
            st.totals.flops,
            64 * 8 * kernel_cost::block_flops(m8, n8, k8)
        );
        assert!(st.totals.bus_vectors_sent > 0);
        assert!(st.totals.bus_vectors_received > 0);
        // Every C value = sum over K=64 of 1*2.
        let mut c0 = vec![0.0; m8 * n8];
        mesh.superstep(|ctx, s| {
            if ctx.id() == 0 {
                for i in 0..m8 * n8 {
                    ctx.dma_put(s.c, i, i, 1)?;
                }
            }
            Ok(())
        })
        .unwrap();
        mesh.drain_puts(&mut c0).unwrap();
        assert!(c0.iter().all(|&v| v == 128.0));
    }
}
