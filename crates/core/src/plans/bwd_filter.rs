//! The filter-gradient ("backward filter") pass on the CPE mesh.
//!
//! Training needs `dW[no][ni][kr][kc] = Σ_{b,ro,co} x[b][ni][ro+kr][co+kc] ·
//! g[b][no][ro][co]` — per `(kr, kc)` tap a GEMM whose *reduction* runs
//! over every output pixel and whose result is only `No × Ni`. That shape
//! inverts the forward plan's economics: the accumulator is tiny (the
//! whole `dW` tile lives in LDM for the entire pass), while the operands
//! stream once — the ideal case for the register-communication rotation,
//! since each streamed tile is reduced against every other chunk.
//!
//! Mesh distribution per pixel tile (batch block `b_B`, one output row,
//! column block `b_co`):
//!
//! * `g` (gradient): CPE `(i, j)` holds `no ∈ chunk_i`, pixels of batch
//!   quad `j` — the forward plan's output distribution, so a fused
//!   training step would not even need a relayout;
//! * `x` (activations): CPE `(i, j)` holds the input window of batch quad
//!   `i`, channels `ni ∈ chunk_j`;
//! * `dW`: CPE `(i, j)` accumulates `no ∈ chunk_i`, `ni ∈ chunk_j` for all
//!   `(kr, kc)` taps.
//!
//! Each rotation round `r` broadcasts `g` blocks along rows from column
//! `r` and `x` blocks along columns from row `r`, exactly the Fig. 3
//! pattern with the reduction running over pixels instead of channels.

use super::gemm_mesh::{lease_scratch, regcomm_gemm_with, zero_c, GemmBlock};
use super::{extrapolate, PlanTiming};
use crate::error::SwdnnError;
use sw_perfmodel::ChipSpec;
use sw_sim::{DmaHandle, LdmBuf, Mesh};
use sw_tensor::{ConvShape, Layout, Tensor4};

/// The backward-filter plan.
#[derive(Clone, Copy, Debug)]
pub struct BwdFilterPlan {
    pub chip: ChipSpec,
    /// Batch block (multiple of 32: whole quads per mesh chunk).
    pub b_b: usize,
    /// Output-column block.
    pub b_co: usize,
    pub reordered_kernel: bool,
    /// Execution context the simulated mesh runs on.
    pub rt: &'static sw_runtime::ExecutionContext,
}

struct Slot {
    g: [LdmBuf; 2],
    x: [LdmBuf; 2],
    c: LdmBuf,
    g_h: [Option<DmaHandle>; 2],
    x_h: [Option<DmaHandle>; 2],
}

impl BwdFilterPlan {
    pub fn new(b_b: usize, b_co: usize) -> Self {
        Self {
            chip: ChipSpec::sw26010(),
            b_b,
            b_co,
            reordered_kernel: true,
            rt: sw_runtime::global(),
        }
    }

    /// Run the simulated mesh on an explicit execution context.
    pub fn on_runtime(mut self, rt: &'static sw_runtime::ExecutionContext) -> Self {
        self.rt = rt;
        self
    }

    /// Largest default blocking that fits the paper-scale shapes.
    pub fn auto(shape: &ConvShape) -> Self {
        for (b_b, b_co) in [(32usize, 16usize), (32, 8), (32, 4), (32, 2), (32, 1)] {
            let plan = Self::new(b_b, b_co);
            if plan.supports(shape).is_ok() {
                return plan;
            }
        }
        Self::new(32, 1)
    }

    /// Per-CPE LDM footprint in doubles.
    pub fn ldm_doubles(&self, shape: &ConvShape) -> usize {
        let dim = self.chip.mesh_dim;
        let (ni8, no8) = (shape.ni / dim, shape.no / dim);
        let quads = self.b_b / (4 * dim);
        let win4 = 4 * (self.b_co + shape.kc - 1);
        let g_len = no8 * quads * 4 * self.b_co;
        let x_len = shape.kr * quads * ni8 * win4;
        let c_len = shape.kr * shape.kc * no8 * ni8;
        2 * g_len + 2 * x_len + c_len
    }

    pub fn supports(&self, shape: &ConvShape) -> Result<(), SwdnnError> {
        let fail = |reason: String| {
            Err(SwdnnError::Unsupported {
                plan: "bwd_filter",
                shape: *shape,
                reason,
            })
        };
        let dim = self.chip.mesh_dim;
        if !shape.ni.is_multiple_of(dim) || !shape.no.is_multiple_of(dim) {
            return fail(format!("Ni and No must be multiples of {dim}"));
        }
        if !self.b_b.is_multiple_of(4 * dim) || !shape.batch.is_multiple_of(self.b_b) {
            return fail(format!(
                "batch {} not tileable by b_B {}",
                shape.batch, self.b_b
            ));
        }
        if !shape.co.is_multiple_of(self.b_co) {
            return fail(format!(
                "Co {} not divisible by b_co {}",
                shape.co, self.b_co
            ));
        }
        let need = self.ldm_doubles(shape);
        if need > self.chip.ldm_doubles() {
            return fail(format!(
                "needs {need} LDM doubles > {}",
                self.chip.ldm_doubles()
            ));
        }
        Ok(())
    }

    /// Compute `dW` with full simulation; returns the gradient and timing.
    pub fn run(
        &self,
        shape: &ConvShape,
        input: &Tensor4<f64>,
        d_out: &Tensor4<f64>,
    ) -> Result<(Tensor4<f64>, PlanTiming), SwdnnError> {
        self.supports(shape)?;
        let dim = self.chip.mesh_dim;
        let (ni8, no8) = (shape.ni / dim, shape.no / dim);
        let quads = self.b_b / (4 * dim);
        let (b_b, b_co) = (self.b_b, self.b_co);
        let win4 = 4 * (b_co + shape.kc - 1);
        let (ri, ci) = (shape.ri(), shape.ci());
        let (ro, co, kr_n, kc_n) = (shape.ro, shape.co, shape.kr, shape.kc);
        let (ni, no) = (shape.ni, shape.no);
        let n8 = quads * 4 * b_co; // pixels per chunk

        let input = input.to_layout(Layout::ImageAware);
        let g = d_out.to_layout(Layout::ImageAware);
        let in_data = input.data();
        let g_data = g.data();

        // Global accumulation buffer ordered [(kr*Kc+kc)][no][ni].
        let mut dw_flat = vec![0.0f64; kr_n * kc_n * no * ni];

        let mut mesh: Mesh<Slot> = Mesh::new_on(self.rt, self.chip, |_, _| Slot {
            g: [LdmBuf { offset: 0, len: 0 }; 2],
            x: [LdmBuf { offset: 0, len: 0 }; 2],
            c: LdmBuf { offset: 0, len: 0 },
            g_h: [None; 2],
            x_h: [None; 2],
        });
        let g_len = no8 * n8;
        let x_len = kr_n * quads * ni8 * win4;
        let c_len = kr_n * kc_n * no8 * ni8;
        mesh.superstep(|ctx, s| {
            s.g = [ctx.ldm_alloc(g_len)?, ctx.ldm_alloc(g_len)?];
            s.x = [ctx.ldm_alloc(x_len)?, ctx.ldm_alloc(x_len)?];
            s.c = ctx.ldm_alloc(c_len)?;
            Ok(())
        })?;
        zero_c(&mut mesh, |s: &Slot| s.c)?;

        // One pack/payload arena reused by every GEMM rotation below, leased
        // from the execution context across runs.
        let mut scratch = lease_scratch(self.rt, mesh.chip.mesh_dim);

        // Pixel tiles: (batch block, output row, column block).
        let tiles: Vec<(usize, usize, usize)> = (0..shape.batch / b_b)
            .flat_map(|tb| (0..ro).flat_map(move |r| (0..co / b_co).map(move |tc| (tb, r, tc))))
            .collect();

        for (t_idx, &(tile_b, r_o, tile_c)) in tiles.iter().enumerate() {
            let par = t_idx % 2;
            let co0 = tile_c * b_co;
            // Load superstep: issue this tile's operands (or reuse the
            // prefetched ones), prefetch the next tile, wait.
            let next = tiles.get(t_idx + 1).copied();
            mesh.superstep(|ctx, s| {
                let issue = |ctx: &mut sw_sim::CpeCtx<'_>,
                             s: &mut Slot,
                             tile: (usize, usize, usize),
                             p: usize|
                 -> Result<(), sw_sim::SimError> {
                    let (tb, r_o, tc) = tile;
                    let co0 = tc * b_co;
                    // g: batch quad j, no in chunk_i, row r_o, cols co0..+b_co.
                    let mut last = None;
                    for q in 0..quads {
                        let gq = (tb * b_b) / 4 + ctx.col * quads + q;
                        let src_off = (((gq * no + ctx.row * no8) * ro + r_o) * co + co0) * 4;
                        let h = ctx.dma_get_strided(
                            s.g[p],
                            q * no8 * 4 * b_co,
                            g_data,
                            src_off,
                            no8,
                            ro * co * 4,
                            4 * b_co,
                        )?;
                        last = Some(h);
                    }
                    s.g_h[p] = last;
                    // x: batch quad i, ni in chunk_j, rows r_o..r_o+Kr,
                    // cols co0..co0+b_co+Kc-1.
                    let mut lastx = None;
                    for kr in 0..kr_n {
                        for q in 0..quads {
                            let gq = (tb * b_b) / 4 + ctx.row * quads + q;
                            let src_off =
                                (((gq * ni + ctx.col * ni8) * ri + r_o + kr) * ci + co0) * 4;
                            let h = ctx.dma_get_strided(
                                s.x[p],
                                (kr * quads + q) * ni8 * win4,
                                in_data,
                                src_off,
                                ni8,
                                ri * ci * 4,
                                win4,
                            )?;
                            lastx = Some(h);
                        }
                    }
                    s.x_h[p] = lastx;
                    Ok(())
                };
                if t_idx == 0 {
                    issue(ctx, s, (tile_b, r_o, tile_c), 0)?;
                }
                if let Some(nx) = next {
                    issue(ctx, s, nx, (t_idx + 1) % 2)?;
                }
                if let Some(h) = s.g_h[par].take() {
                    ctx.dma_wait(h);
                }
                if let Some(h) = s.x_h[par].take() {
                    ctx.dma_wait(h);
                }
                Ok(())
            })?;
            let _ = co0;

            // One rotation per (kr, kc) tap, accumulating into the
            // resident dW slice.
            for kr in 0..kr_n {
                for kc in 0..kc_n {
                    let c_off = (kr * kc_n + kc) * no8 * ni8;
                    regcomm_gemm_with(
                        &mut mesh,
                        GemmBlock {
                            m8: no8,
                            n8: ni8,
                            k8: n8,
                            c_stride: ni8,
                            reordered: self.reordered_kernel,
                        },
                        &mut scratch,
                        // A block: g, packed k-major (pixel, no).
                        move |ctx, s: &Slot, dst: &mut Vec<f64>| {
                            let gbuf = ctx.ldm(s.g[par]);
                            for q in 0..quads {
                                for p in 0..4 * b_co {
                                    for m in 0..no8 {
                                        dst.push(gbuf[(q * no8 + m) * 4 * b_co + p]);
                                    }
                                }
                            }
                        },
                        // B block: x taps, packed k-major (pixel, ni).
                        move |ctx, s: &Slot, dst: &mut Vec<f64>| {
                            let xbuf = ctx.ldm(s.x[par]);
                            for q in 0..quads {
                                for p in 0..b_co {
                                    for lane in 0..4 {
                                        for nl in 0..ni8 {
                                            dst.push(
                                                xbuf[(kr * quads + q) * ni8 * win4
                                                    + nl * win4
                                                    + 4 * (p + kc)
                                                    + lane],
                                            );
                                        }
                                    }
                                }
                            }
                        },
                        move |s: &Slot| (s.c, c_off),
                    )?;
                }
            }
        }

        // Store the accumulated dW blocks.
        mesh.superstep(|ctx, s| {
            let mut last = None;
            for krkc in 0..kr_n * kc_n {
                for m in 0..no8 {
                    let n_o = ctx.row * no8 + m;
                    let dst = (krkc * no + n_o) * ni + ctx.col * ni8;
                    let h = ctx.dma_put(s.c, krkc * no8 * ni8 + m * ni8, dst, ni8)?;
                    last = Some(h);
                }
            }
            if let Some(h) = last {
                ctx.dma_wait(h);
            }
            Ok(())
        })?;
        mesh.drain_puts(&mut dw_flat)?;
        mesh.assert_inboxes_empty()?;

        // Transpose [(kr,kc)][no][ni] -> (No, Ni, Kr, Kc).
        let mut dw = Tensor4::zeros(shape.filter_shape(), Layout::Nchw);
        for kr in 0..kr_n {
            for kc in 0..kc_n {
                for n_o in 0..no {
                    for n_i in 0..ni {
                        dw.set(
                            n_o,
                            n_i,
                            kr,
                            kc,
                            dw_flat[((kr * kc_n + kc) * no + n_o) * ni + n_i],
                        );
                    }
                }
            }
        }
        let stats = mesh.stats();
        Ok((
            dw,
            PlanTiming {
                cycles: stats.cycles,
                stats,
                sampled: false,
                modeled: false,
            },
        ))
    }

    /// Sampled full-shape timing (the pass is linear in the pixel tiles).
    pub fn time_full_shape(&self, shape: &ConvShape) -> Result<PlanTiming, SwdnnError> {
        self.supports(shape)?;
        let reduced = |n_ro: usize| ConvShape {
            batch: self.b_b,
            ro: n_ro,
            co: self.b_co,
            ..*shape
        };
        let run = |s: &ConvShape| -> Result<PlanTiming, SwdnnError> {
            let input = sw_tensor::init::seeded_tensor(s.input_shape(), Layout::ImageAware, 31);
            let d_out = sw_tensor::init::seeded_tensor(s.output_shape(), Layout::ImageAware, 32);
            Ok(self.run(s, &input, &d_out)?.1)
        };
        let t1 = run(&reduced(1))?;
        let t2 = run(&reduced(2))?;
        let n_full =
            (shape.batch / self.b_b) as u64 * shape.ro as u64 * (shape.co / self.b_co) as u64;
        Ok(extrapolate(&t1, 1, &t2, 2, n_full))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::conv2d_bwd_filter_ref;
    use sw_tensor::init::{lattice_tensor, seeded_tensor};

    fn small_shape() -> ConvShape {
        ConvShape::new(32, 8, 8, 4, 8, 3, 3)
    }

    #[test]
    fn matches_reference_exactly_on_lattice_data() {
        let shape = small_shape();
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 301);
        let d_out = lattice_tensor(shape.output_shape(), Layout::Nchw, 302);
        let expect = conv2d_bwd_filter_ref(shape, &input, &d_out);
        let (dw, timing) = BwdFilterPlan::new(32, 4)
            .run(&shape, &input, &d_out)
            .unwrap();
        assert_eq!(dw.max_abs_diff(&expect), 0.0);
        assert!(timing.cycles > 0);
    }

    #[test]
    fn matches_reference_on_random_data_and_asymmetric_filters() {
        let shape = ConvShape::new(32, 16, 8, 3, 8, 2, 3);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 303);
        let d_out = seeded_tensor(shape.output_shape(), Layout::Nchw, 304);
        let expect = conv2d_bwd_filter_ref(shape, &input, &d_out);
        let (dw, _) = BwdFilterPlan::new(32, 4)
            .run(&shape, &input, &d_out)
            .unwrap();
        assert!(dw.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn auto_blocking_supports_paper_scale() {
        let shape = ConvShape::new(128, 128, 128, 64, 64, 3, 3);
        let plan = BwdFilterPlan::auto(&shape);
        assert!(
            plan.supports(&shape).is_ok(),
            "footprint {}",
            plan.ldm_doubles(&shape)
        );
    }

    #[test]
    fn sampled_timing_tracks_full_timing() {
        let shape = ConvShape::new(32, 8, 8, 6, 8, 3, 3);
        let plan = BwdFilterPlan::new(32, 4);
        let full = {
            let input = seeded_tensor(shape.input_shape(), Layout::ImageAware, 305);
            let d_out = seeded_tensor(shape.output_shape(), Layout::ImageAware, 306);
            plan.run(&shape, &input, &d_out).unwrap().1
        };
        let sampled = plan.time_full_shape(&shape).unwrap();
        let rel = (sampled.cycles as f64 - full.cycles as f64).abs() / full.cycles as f64;
        assert!(
            rel < 0.06,
            "sampled {} vs full {} ({rel:.3})",
            sampled.cycles,
            full.cycles
        );
    }

    #[test]
    fn rejects_bad_shapes() {
        let plan = BwdFilterPlan::new(32, 4);
        assert!(plan
            .supports(&ConvShape::new(31, 8, 8, 4, 8, 3, 3))
            .is_err());
        assert!(plan
            .supports(&ConvShape::new(32, 7, 8, 4, 8, 3, 3))
            .is_err());
        assert!(plan
            .supports(&ConvShape::new(32, 8, 8, 4, 7, 3, 3))
            .is_err());
    }
}
