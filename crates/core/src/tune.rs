//! Model-guided autotuning over the schedule space.
//!
//! The paper's §VII claims the performance model "provided useful guidance
//! in our optimization process". This module takes that literally: the
//! search enumerates [`Schedule`] candidates, prices every legal one with
//! the three-level model (the Fig. 2 REG/MEM bandwidth derates), and
//! *simulates only the predicted frontier* — the model prunes the space,
//! the simulator ranks the survivors. Each simulated candidate costs two
//! small runs (the sampled-timing machinery); each pruned candidate costs
//! one analytic evaluation. The `model_vs_autotune` bench reports the
//! model's regret against this empirical oracle, and the
//! `autotune_search` bench gates the searched winner against the hand
//! presets on every Table III shape.
//!
//! Shapes the dense schedule space cannot express at all (stride,
//! dilation, padding) go through [`autotune_general`]: a search over the
//! patch-GEMM pixel-block axis, compared against an honest *host* MPE
//! baseline (one CPE-speed core running the reference loops — not the
//! mesh-level modeled timing the dense reference plan reports).

use crate::error::SwdnnError;
use crate::plans::{lower_schedule, BatchAwarePlan, ConvPlan, LowerCtx, PatchGemmPlan, Schedule};
use sw_perfmodel::select::Blocking;
use sw_perfmodel::{select_plan, ChipSpec, ConvPerfModel, PlanKind};
use sw_tensor::{general_flops, ConvGeometry, ConvShape, Shape4};

/// One searched candidate.
#[derive(Clone, Debug)]
pub struct Candidate {
    pub description: String,
    /// The schedule-space point this candidate lowers.
    pub schedule: Schedule,
    /// Which plan family this candidate instantiates.
    pub kind: PlanKind,
    /// The LDM blocking the candidate executed with (for batch-size-aware
    /// plans `b_b` is the whole batch, matching
    /// [`crate::plans::ConvPlan::blocking`]).
    pub blocking: Blocking,
    /// The model's predicted Gflops per CG (what the pruning ranked on).
    pub predicted_gflops: f64,
    /// Simulated cycles for the full shape (sampled).
    pub cycles: u64,
    /// Attained Gflops on one CG.
    pub gflops: f64,
}

/// The autotuning outcome.
#[derive(Clone, Debug)]
pub struct TuneReport {
    /// All *simulated* candidates, fastest first.
    pub candidates: Vec<Candidate>,
    /// What the analytic model would have picked, as an index into
    /// `candidates` (None if the model's choice was infeasible).
    pub model_choice: Option<usize>,
    /// Legal schedules enumerated (simulated + pruned).
    pub enumerated: usize,
    /// Legal schedules the model priced but the search did not simulate.
    pub pruned: usize,
}

impl TuneReport {
    pub fn best(&self) -> &Candidate {
        &self.candidates[0]
    }

    /// Fraction of the empirically-best throughput the model's choice
    /// attains (1.0 = the model found the optimum). `None` when the model
    /// choice was infeasible or the best candidate attained zero
    /// throughput (degenerate shapes with no flops).
    pub fn model_fraction_of_best(&self) -> Option<f64> {
        let i = self.model_choice?;
        let best = self.candidates[0].gflops;
        if best <= 0.0 {
            return None;
        }
        Some(self.candidates[i].gflops / best)
    }
}

/// The dense schedule space: every `(b_B, b_Co)` the two mesh loop orders
/// can express for this shape. Legality is *not* decided here — the
/// lowering's `supports` check is the arbiter (enumerating from `b_b = 8`
/// matters on the degraded 4-wide mesh, where the row granule is 16).
fn enumerate_schedules(shape: &ConvShape) -> Vec<Schedule> {
    let mut out = Vec::new();
    for b_co in [16usize, 8, 4, 2, 1] {
        if shape.co.is_multiple_of(b_co) {
            out.push(Schedule::batch_aware(b_co));
        }
    }
    let mut b_b = 8usize;
    while b_b <= shape.batch {
        if shape.batch.is_multiple_of(b_b) {
            for b_co in [32usize, 16, 8, 4, 2, 1] {
                if shape.co.is_multiple_of(b_co) {
                    out.push(Schedule::image_aware(b_b, b_co));
                }
            }
        }
        b_b *= 2;
    }
    out
}

/// Search the schedule space for `shape` on the stock SW26010.
pub fn autotune(shape: &ConvShape) -> Result<TuneReport, SwdnnError> {
    autotune_on(&ChipSpec::sw26010(), shape)
}

/// [`autotune`] on an explicit chip (e.g. the degraded 4×4 mesh
/// [`crate::resilient::ResilientExecutor::degraded_chip`] builds).
pub fn autotune_on(chip: &ChipSpec, shape: &ConvShape) -> Result<TuneReport, SwdnnError> {
    autotune_with(chip, shape, &[])
}

/// [`autotune_on`] with warm-start schedules: `extra` points are searched
/// ahead of the enumerated space and always simulated, so a known-good
/// hand preset is guaranteed to bound the result from above (the searched
/// winner can never be slower than a legal warm start).
pub fn autotune_with(
    chip: &ChipSpec,
    shape: &ConvShape,
    extra: &[Schedule],
) -> Result<TuneReport, SwdnnError> {
    let ctx = LowerCtx::on_chip(*chip);
    let model = ConvPerfModel {
        chip: *chip,
        ..ConvPerfModel::default()
    };

    // The model's own pick, matched structurally later.
    let model_pick: Option<(PlanKind, Blocking)> = select_plan(shape, chip).map(|c| match c.kind {
        PlanKind::BatchSizeAware => {
            // The executor's batch plan auto-selects its own b_co.
            let auto = BatchAwarePlan::auto_on(*chip, shape);
            (
                c.kind,
                Blocking {
                    b_b: shape.batch,
                    b_co: auto.b_co,
                },
            )
        }
        _ => (c.kind, c.blocking),
    });

    // Enumerate, lower, and price. Illegal points are recorded (their
    // rejection reasons feed the PlanRejected error when nothing is
    // legal); legal points carry their lowered plan and predicted Gflops.
    // (schedule, lowered plan, blocking, predicted Gflops, warm start).
    type Priced = (Schedule, Box<dyn ConvPlan>, Blocking, f64, bool);
    let mut seen: Vec<Schedule> = Vec::new();
    let mut legal: Vec<Priced> = Vec::new();
    let mut reasons: Vec<String> = Vec::new();
    for (i, sched) in extra
        .iter()
        .chain(enumerate_schedules(shape).iter())
        .enumerate()
    {
        if seen.contains(sched) {
            continue;
        }
        seen.push(*sched);
        let warm = i < extra.len();
        match lower_schedule(sched, shape, &ctx) {
            Ok(plan) => {
                let blocking = plan.blocking(shape);
                let est = model.estimate(
                    sched.kind,
                    blocking,
                    shape.batch,
                    shape.ni,
                    shape.no,
                    shape.kc,
                );
                legal.push((*sched, plan, blocking, est.gflops_per_cg, warm));
            }
            Err(e) => reasons.push(e.to_string()),
        }
    }
    if legal.is_empty() {
        let mut reason = String::from("no legal schedule in the search space");
        for r in reasons.iter().take(3) {
            reason.push_str("; ");
            reason.push_str(r);
        }
        if reasons.len() > 3 {
            reason.push_str(&format!("; and {} more", reasons.len() - 3));
        }
        return Err(SwdnnError::PlanRejected {
            shape: *shape,
            reason,
        });
    }

    // Prune by predicted bandwidth-derated throughput: simulate the
    // frontier (within 60% of the best prediction), the top 8 as a
    // model-error hedge, every warm start, and the model's own pick.
    let enumerated = legal.len();
    legal.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal));
    let best_pred = legal[0].3;
    let frontier = |rank: usize, sched: &Schedule, blocking: &Blocking, pred: f64, warm: bool| {
        warm || rank < 8 || pred >= 0.6 * best_pred || model_pick == Some((sched.kind, *blocking))
    };

    let mut candidates: Vec<Candidate> = Vec::new();
    let mut pruned = 0usize;
    for (rank, (sched, plan, blocking, pred, warm)) in legal.into_iter().enumerate() {
        if !frontier(rank, &sched, &blocking, pred, warm) {
            pruned += 1;
            continue;
        }
        let timing = plan.time_full_shape(shape)?;
        candidates.push(Candidate {
            description: sched.describe(),
            schedule: sched,
            kind: sched.kind,
            blocking,
            predicted_gflops: pred,
            cycles: timing.cycles,
            gflops: timing.gflops(shape, chip),
        });
    }
    candidates.sort_by_key(|c| c.cycles);

    // Identify the analytic model's pick among the simulated candidates by
    // structure (kind + blocking), not by description strings — a format
    // tweak must not silently detach the model from its candidate.
    let model_choice = model_pick.and_then(|(kind, blocking)| {
        candidates
            .iter()
            .position(|c| c.kind == kind && c.blocking == blocking)
    });
    Ok(TuneReport {
        candidates,
        model_choice,
        enumerated,
        pruned,
    })
}

/// Simulated cycles of the honest host baseline for a general geometry:
/// one MPE-speed core (one CPE's peak, no mesh) running the reference
/// loops. This is the bar a searched mesh schedule must beat — the dense
/// reference plan's mesh-level modeled timing is not an achievable
/// fallback for shapes the mesh cannot serve.
pub fn host_general_cycles(chip: &ChipSpec, geom: &ConvGeometry, input: Shape4, no: usize) -> u64 {
    let flops = general_flops(geom, input, no) as f64;
    let secs = flops / (chip.peak_gflops_per_cpe().max(1e-9) * 1e9);
    (secs * chip.clock_ghz * 1e9).ceil() as u64
}

/// Outcome of a general-geometry (stride/dilation/padding) search.
#[derive(Clone, Debug)]
pub struct GeneralTune {
    /// The winning patch-GEMM schedule.
    pub schedule: Schedule,
    /// Simulated mesh cycles of the winner (full run).
    pub cycles: u64,
    /// Attained Gflops on one CG.
    pub gflops: f64,
    /// The host MPE baseline ([`host_general_cycles`]).
    pub host_cycles: u64,
    /// Legal pixel-block candidates considered.
    pub enumerated: usize,
}

impl GeneralTune {
    /// Speedup of the searched mesh schedule over the host baseline.
    pub fn speedup_vs_host(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.host_cycles as f64 / self.cycles as f64
    }
}

/// Search the patch-GEMM pixel-block axis for a geometry the dense
/// schedule space cannot express. The model orders the `b_P` candidates
/// (Eq. 1 with `b_Co·b_B → b_P`); the top of the frontier is simulated in
/// full (general shapes reachable today are small).
pub fn autotune_general(
    chip: &ChipSpec,
    geom: &ConvGeometry,
    input: Shape4,
    no: usize,
) -> Result<GeneralTune, SwdnnError> {
    let model = ConvPerfModel {
        chip: *chip,
        ..ConvPerfModel::default()
    };
    let dim = chip.mesh_dim;
    let (batch, ni) = (input.d0, input.d1);
    let mut legal: Vec<(usize, f64)> = Vec::new();
    let mut last_err = None;
    for exp in 0..6 {
        let b_p = dim << exp;
        let plan = PatchGemmPlan::new(b_p).on_chip(*chip);
        match plan.supports_general(geom, input, no) {
            Ok(()) => {
                let est = model.estimate(
                    PlanKind::PatchGemm,
                    Blocking { b_b: b_p, b_co: 1 },
                    batch,
                    ni,
                    no,
                    geom.kc,
                );
                legal.push((b_p, est.gflops_per_cg));
            }
            Err(e) => last_err = Some(e),
        }
    }
    if legal.is_empty() {
        return Err(last_err.expect("at least one candidate was probed"));
    }
    legal.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let enumerated = legal.len();

    let flops = general_flops(geom, input, no) as f64;
    let mut best: Option<(Schedule, u64)> = None;
    for &(b_p, _) in legal.iter().take(3) {
        let plan = PatchGemmPlan::new(b_p).on_chip(*chip);
        let timing = plan.time_general(geom, input, no)?;
        if best.is_none_or(|(_, c)| timing.cycles < c) {
            best = Some((Schedule::patch_gemm(b_p), timing.cycles));
        }
    }
    let (schedule, cycles) = best.expect("frontier is non-empty");
    let secs = cycles as f64 / (chip.clock_ghz * 1e9);
    Ok(GeneralTune {
        schedule,
        cycles,
        gflops: if secs > 0.0 { flops / secs / 1e9 } else { 0.0 },
        host_cycles: host_general_cycles(chip, geom, input, no),
        enumerated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autotune_orders_candidates_fastest_first() {
        let shape = ConvShape::new(32, 16, 16, 4, 8, 3, 3);
        let rep = autotune(&shape).unwrap();
        assert!(rep.candidates.len() >= 3, "several candidates expected");
        assert!(rep
            .candidates
            .windows(2)
            .all(|w| w[0].cycles <= w[1].cycles));
        assert!(rep.best().gflops > 0.0);
        assert_eq!(rep.enumerated, rep.candidates.len() + rep.pruned);
    }

    #[test]
    fn model_choice_is_feasible_and_reasonable() {
        // At tiny shapes the model misranks (its Eqs. ignore fixed
        // per-superstep costs that dominate small problems); the §VII
        // near-optimality claim is asserted at paper scale by the
        // `model_vs_autotune` bench, where the model finds the empirical
        // optimum. Here: the choice must exist and not be catastrophic.
        let shape = ConvShape::new(32, 16, 16, 6, 8, 3, 3);
        let rep = autotune(&shape).unwrap();
        let frac = rep
            .model_fraction_of_best()
            .expect("model choice must be feasible");
        assert!(frac > 0.2, "model at {frac:.2} of the empirical best");
        assert!(frac <= 1.0 + 1e-12);
    }

    #[test]
    fn small_batch_gets_image_aware_candidates() {
        // Regression: enumeration started at b_b = 32, so any batch < 32
        // produced zero image-size-aware candidates — and a spurious
        // NoPlan where feasible b_b ∈ {8, 16} existed per Algorithm 1.
        // On the degraded 4×4 mesh (row granule 4·4 = 16) a batch of 16
        // maps cleanly with b_b = 16.
        let chip = crate::resilient::ResilientExecutor::degraded_chip(ChipSpec::sw26010());
        let shape = ConvShape::new(16, 16, 16, 8, 8, 3, 3);
        let rep = autotune_on(&chip, &shape).unwrap();
        assert!(
            rep.candidates
                .iter()
                .any(|c| c.kind == PlanKind::ImageSizeAware && c.blocking.b_b == 16),
            "batch 16 must yield image-aware candidates: {:?}",
            rep.candidates
                .iter()
                .map(|c| c.description.as_str())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn model_choice_matches_on_structure_not_strings() {
        let chip = ChipSpec::sw26010();
        let shape = ConvShape::new(32, 16, 16, 6, 8, 3, 3);
        let rep = autotune(&shape).unwrap();
        let pick = select_plan(&shape, &chip).expect("selector has a pick");
        let i = rep
            .model_choice
            .expect("model pick must map to a candidate");
        assert_eq!(rep.candidates[i].kind, pick.kind);
        if pick.kind == PlanKind::ImageSizeAware {
            assert_eq!(rep.candidates[i].blocking, pick.blocking);
        }
    }

    #[test]
    fn infeasible_shapes_return_structured_rejection() {
        // Channels not a multiple of 8: no mesh schedule is legal. The
        // search must say *why*, not throw the catch-all NoPlan.
        let shape = ConvShape::new(32, 7, 7, 4, 8, 3, 3);
        match autotune(&shape) {
            Err(SwdnnError::PlanRejected { shape: s, reason }) => {
                assert_eq!(s, shape);
                assert!(reason.contains("multiple"), "{reason}");
            }
            other => panic!("expected PlanRejected, got {other:?}"),
        }
    }

    #[test]
    fn warm_start_schedule_bounds_the_search() {
        let shape = ConvShape::new(32, 16, 16, 4, 8, 3, 3);
        let hand = Schedule::image_aware(32, 4);
        let rep = autotune_with(&ChipSpec::sw26010(), &shape, &[hand]).unwrap();
        let warm = rep
            .candidates
            .iter()
            .find(|c| c.schedule == hand)
            .expect("warm start must be simulated");
        assert!(rep.best().cycles <= warm.cycles);
    }

    #[test]
    fn stride_two_search_beats_the_host_baseline() {
        // The acceptance shape class: stride 2, which every dense plan
        // rejects. The searched patch schedule must beat the honest host
        // MPE reference.
        let chip = ChipSpec::sw26010();
        let geom = ConvGeometry::valid(3, 3).with_stride(2, 2);
        let input = Shape4::new(8, 16, 9, 9);
        let tune = autotune_general(&chip, &geom, input, 16).unwrap();
        assert!(tune.cycles > 0);
        assert!(
            tune.cycles < tune.host_cycles,
            "mesh {} cycles vs host {} cycles",
            tune.cycles,
            tune.host_cycles
        );
        assert!(tune.speedup_vs_host() > 1.0);
        assert_eq!(tune.schedule.kind, PlanKind::PatchGemm);
    }

    #[test]
    fn general_search_rejects_off_grid_channels() {
        let chip = ChipSpec::sw26010();
        let geom = ConvGeometry::valid(3, 3).with_stride(2, 2);
        let err = autotune_general(&chip, &geom, Shape4::new(8, 7, 9, 9), 16).unwrap_err();
        assert!(matches!(err, SwdnnError::PlanRejected { .. }), "{err}");
    }
}
