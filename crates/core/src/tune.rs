//! Empirical plan autotuning.
//!
//! The paper's §VII claims the performance model "provided useful guidance
//! in our optimization process" — the model picks the plan, rather than an
//! exhaustive search. This module implements the alternative the claim is
//! measured against: *empirically* time every feasible plan/blocking
//! candidate (via the sampled-timing machinery, so each candidate costs
//! two small simulations) and pick the fastest. The `model_vs_autotune`
//! bench reports the model's regret against this oracle.

use crate::error::SwdnnError;
use crate::plans::{BatchAwarePlan, ConvPlan, ImageAwarePlan};
use sw_perfmodel::select::Blocking;
use sw_perfmodel::{select_plan, ChipSpec, PlanKind};
use sw_tensor::ConvShape;

/// One timed candidate.
#[derive(Clone, Debug)]
pub struct Candidate {
    pub description: String,
    /// Which plan family this candidate instantiates.
    pub kind: PlanKind,
    /// The LDM blocking the candidate executed with (for batch-size-aware
    /// plans `b_b` is the whole batch, matching
    /// [`crate::plans::ConvPlan::blocking`]).
    pub blocking: Blocking,
    /// Simulated cycles for the full shape (sampled).
    pub cycles: u64,
    /// Attained Gflops on one CG.
    pub gflops: f64,
}

/// The autotuning outcome.
#[derive(Clone, Debug)]
pub struct TuneReport {
    /// All candidates, fastest first.
    pub candidates: Vec<Candidate>,
    /// What the analytic model would have picked, as an index into
    /// `candidates` (None if the model's choice was infeasible).
    pub model_choice: Option<usize>,
}

impl TuneReport {
    pub fn best(&self) -> &Candidate {
        &self.candidates[0]
    }

    /// Fraction of the empirically-best throughput the model's choice
    /// attains (1.0 = the model found the optimum).
    pub fn model_fraction_of_best(&self) -> Option<f64> {
        self.model_choice
            .map(|i| self.candidates[i].gflops / self.candidates[0].gflops)
    }
}

/// Enumerate and time every feasible plan for `shape` on the stock SW26010.
pub fn autotune(shape: &ConvShape) -> Result<TuneReport, SwdnnError> {
    autotune_on(&ChipSpec::sw26010(), shape)
}

/// Enumerate and time every feasible plan for `shape` on an explicit chip
/// (e.g. the degraded 4×4 mesh
/// [`crate::resilient::ResilientExecutor::degraded_chip`] builds).
pub fn autotune_on(chip: &ChipSpec, shape: &ConvShape) -> Result<TuneReport, SwdnnError> {
    let mut candidates: Vec<Candidate> = Vec::new();

    // Batch-size-aware candidates over its b_co choices.
    for b_co in [16usize, 8, 4, 2, 1] {
        if !shape.co.is_multiple_of(b_co) {
            continue;
        }
        let mut plan = BatchAwarePlan::new(b_co);
        plan.chip = *chip;
        if plan.supports(shape).is_err() {
            continue;
        }
        let timing = plan.time_full_shape(shape)?;
        candidates.push(Candidate {
            description: format!("batch_size_aware b_co={b_co}"),
            kind: PlanKind::BatchSizeAware,
            blocking: plan.blocking(shape),
            cycles: timing.cycles,
            gflops: timing.gflops(shape, chip),
        });
    }

    // Image-size-aware candidates over (b_b, b_co). Enumeration starts at
    // the smallest b_b Algorithm 1 can map (8, one image row block per
    // mesh row on a degraded 4-wide mesh) — starting at 32 silently
    // produced *zero* image-aware candidates for any batch < 32 and a
    // spurious NoPlan even when a feasible b_b ∈ {8, 16} existed; the
    // plan's own `supports` is the arbiter of mesh divisibility, not the
    // enumeration floor.
    let mut b_b = 8usize;
    while b_b <= shape.batch {
        if shape.batch.is_multiple_of(b_b) {
            for b_co in [32usize, 16, 8, 4, 2, 1] {
                if !shape.co.is_multiple_of(b_co) {
                    continue;
                }
                let blocking = Blocking { b_b, b_co };
                let plan = ImageAwarePlan::new(blocking).on_chip(*chip);
                if plan.supports(shape).is_err() {
                    continue;
                }
                let timing = plan.time_full_shape(shape)?;
                candidates.push(Candidate {
                    description: format!("image_size_aware b_b={b_b} b_co={b_co}"),
                    kind: PlanKind::ImageSizeAware,
                    blocking,
                    cycles: timing.cycles,
                    gflops: timing.gflops(shape, chip),
                });
            }
        }
        b_b *= 2;
    }

    if candidates.is_empty() {
        return Err(SwdnnError::NoPlan(*shape));
    }
    candidates.sort_by_key(|c| c.cycles);

    // Identify the analytic model's pick among the candidates by structure
    // (kind + blocking), not by description strings — a format tweak must
    // not silently detach the model from its candidate.
    let model_pick: Option<(PlanKind, Blocking)> = select_plan(shape, chip).map(|c| match c.kind {
        PlanKind::BatchSizeAware => {
            // The executor's batch plan auto-selects its own b_co.
            let auto = BatchAwarePlan::auto_on(*chip, shape);
            (
                c.kind,
                Blocking {
                    b_b: shape.batch,
                    b_co: auto.b_co,
                },
            )
        }
        _ => (c.kind, c.blocking),
    });
    let model_choice = model_pick.and_then(|(kind, blocking)| {
        candidates
            .iter()
            .position(|c| c.kind == kind && c.blocking == blocking)
    });
    Ok(TuneReport {
        candidates,
        model_choice,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autotune_orders_candidates_fastest_first() {
        let shape = ConvShape::new(32, 16, 16, 4, 8, 3, 3);
        let rep = autotune(&shape).unwrap();
        assert!(rep.candidates.len() >= 3, "several candidates expected");
        assert!(rep
            .candidates
            .windows(2)
            .all(|w| w[0].cycles <= w[1].cycles));
        assert!(rep.best().gflops > 0.0);
    }

    #[test]
    fn model_choice_is_feasible_and_reasonable() {
        // At tiny shapes the model misranks (its Eqs. ignore fixed
        // per-superstep costs that dominate small problems); the §VII
        // near-optimality claim is asserted at paper scale by the
        // `model_vs_autotune` bench, where the model finds the empirical
        // optimum. Here: the choice must exist and not be catastrophic.
        let shape = ConvShape::new(32, 16, 16, 6, 8, 3, 3);
        let rep = autotune(&shape).unwrap();
        let frac = rep
            .model_fraction_of_best()
            .expect("model choice must be feasible");
        assert!(frac > 0.2, "model at {frac:.2} of the empirical best");
        assert!(frac <= 1.0 + 1e-12);
    }

    #[test]
    fn small_batch_gets_image_aware_candidates() {
        // Regression: enumeration started at b_b = 32, so any batch < 32
        // produced zero image-size-aware candidates — and a spurious
        // NoPlan where feasible b_b ∈ {8, 16} existed per Algorithm 1.
        // On the degraded 4×4 mesh (row granule 4·4 = 16) a batch of 16
        // maps cleanly with b_b = 16.
        let chip = crate::resilient::ResilientExecutor::degraded_chip(ChipSpec::sw26010());
        let shape = ConvShape::new(16, 16, 16, 8, 8, 3, 3);
        let rep = autotune_on(&chip, &shape).unwrap();
        assert!(
            rep.candidates
                .iter()
                .any(|c| c.kind == PlanKind::ImageSizeAware && c.blocking.b_b == 16),
            "batch 16 must yield image-aware candidates: {:?}",
            rep.candidates
                .iter()
                .map(|c| c.description.as_str())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn model_choice_matches_on_structure_not_strings() {
        let chip = ChipSpec::sw26010();
        let shape = ConvShape::new(32, 16, 16, 6, 8, 3, 3);
        let rep = autotune(&shape).unwrap();
        let pick = select_plan(&shape, &chip).expect("selector has a pick");
        let i = rep
            .model_choice
            .expect("model pick must map to a candidate");
        assert_eq!(rep.candidates[i].kind, pick.kind);
        if pick.kind == PlanKind::ImageSizeAware {
            assert_eq!(rep.candidates[i].blocking, pick.blocking);
        }
    }

    #[test]
    fn infeasible_shapes_error() {
        // Channels not a multiple of 8: no mesh plan candidates at all.
        let shape = ConvShape::new(32, 7, 7, 4, 8, 3, 3);
        assert!(matches!(autotune(&shape), Err(SwdnnError::NoPlan(_))));
    }
}
