//! Empirical plan autotuning.
//!
//! The paper's §VII claims the performance model "provided useful guidance
//! in our optimization process" — the model picks the plan, rather than an
//! exhaustive search. This module implements the alternative the claim is
//! measured against: *empirically* time every feasible plan/blocking
//! candidate (via the sampled-timing machinery, so each candidate costs
//! two small simulations) and pick the fastest. The `model_vs_autotune`
//! bench reports the model's regret against this oracle.

use crate::error::SwdnnError;
use crate::plans::{BatchAwarePlan, ConvPlan, ImageAwarePlan};
use sw_perfmodel::select::Blocking;
use sw_perfmodel::{select_plan, ChipSpec};
use sw_tensor::ConvShape;

/// One timed candidate.
#[derive(Clone, Debug)]
pub struct Candidate {
    pub description: String,
    /// Simulated cycles for the full shape (sampled).
    pub cycles: u64,
    /// Attained Gflops on one CG.
    pub gflops: f64,
}

/// The autotuning outcome.
#[derive(Clone, Debug)]
pub struct TuneReport {
    /// All candidates, fastest first.
    pub candidates: Vec<Candidate>,
    /// What the analytic model would have picked, as an index into
    /// `candidates` (None if the model's choice was infeasible).
    pub model_choice: Option<usize>,
}

impl TuneReport {
    pub fn best(&self) -> &Candidate {
        &self.candidates[0]
    }

    /// Fraction of the empirically-best throughput the model's choice
    /// attains (1.0 = the model found the optimum).
    pub fn model_fraction_of_best(&self) -> Option<f64> {
        self.model_choice
            .map(|i| self.candidates[i].gflops / self.candidates[0].gflops)
    }
}

/// Enumerate and time every feasible plan for `shape`.
pub fn autotune(shape: &ConvShape) -> Result<TuneReport, SwdnnError> {
    let chip = ChipSpec::sw26010();
    let mut raw: Vec<(String, u64, f64)> = Vec::new();

    // Batch-size-aware candidates over its b_co choices.
    for b_co in [16usize, 8, 4, 2, 1] {
        if !shape.co.is_multiple_of(b_co) {
            continue;
        }
        let plan = BatchAwarePlan::new(b_co);
        if plan.supports(shape).is_err() {
            continue;
        }
        let timing = plan.time_full_shape(shape)?;
        raw.push((
            format!("batch_size_aware b_co={b_co}"),
            timing.cycles,
            timing.gflops(shape, &chip),
        ));
    }

    // Image-size-aware candidates over (b_b, b_co).
    let mut b_b = 32usize;
    while b_b <= shape.batch {
        if shape.batch.is_multiple_of(b_b) {
            for b_co in [32usize, 16, 8, 4, 2, 1] {
                if !shape.co.is_multiple_of(b_co) {
                    continue;
                }
                let plan = ImageAwarePlan::new(Blocking { b_b, b_co });
                if plan.supports(shape).is_err() {
                    continue;
                }
                let timing = plan.time_full_shape(shape)?;
                raw.push((
                    format!("image_size_aware b_b={b_b} b_co={b_co}"),
                    timing.cycles,
                    timing.gflops(shape, &chip),
                ));
            }
        }
        b_b *= 2;
    }

    if raw.is_empty() {
        return Err(SwdnnError::NoPlan(*shape));
    }
    raw.sort_by_key(|c| c.1);

    // Identify the analytic model's pick among the candidates.
    let model_desc = select_plan(shape, &chip).map(|c| match c.kind {
        sw_perfmodel::PlanKind::BatchSizeAware => {
            // The executor's batch plan auto-selects its own b_co.
            let auto = BatchAwarePlan::auto(shape);
            format!("batch_size_aware b_co={}", auto.b_co)
        }
        _ => format!(
            "image_size_aware b_b={} b_co={}",
            c.blocking.b_b, c.blocking.b_co
        ),
    });
    let candidates: Vec<Candidate> = raw
        .into_iter()
        .map(|(description, cycles, gflops)| Candidate {
            description,
            cycles,
            gflops,
        })
        .collect();
    let model_choice = model_desc.and_then(|d| candidates.iter().position(|c| c.description == d));
    Ok(TuneReport {
        candidates,
        model_choice,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autotune_orders_candidates_fastest_first() {
        let shape = ConvShape::new(32, 16, 16, 4, 8, 3, 3);
        let rep = autotune(&shape).unwrap();
        assert!(rep.candidates.len() >= 3, "several candidates expected");
        assert!(rep
            .candidates
            .windows(2)
            .all(|w| w[0].cycles <= w[1].cycles));
        assert!(rep.best().gflops > 0.0);
    }

    #[test]
    fn model_choice_is_feasible_and_reasonable() {
        // At tiny shapes the model misranks (its Eqs. ignore fixed
        // per-superstep costs that dominate small problems); the §VII
        // near-optimality claim is asserted at paper scale by the
        // `model_vs_autotune` bench, where the model finds the empirical
        // optimum. Here: the choice must exist and not be catastrophic.
        let shape = ConvShape::new(32, 16, 16, 6, 8, 3, 3);
        let rep = autotune(&shape).unwrap();
        let frac = rep
            .model_fraction_of_best()
            .expect("model choice must be feasible");
        assert!(frac > 0.2, "model at {frac:.2} of the empirical best");
        assert!(frac <= 1.0 + 1e-12);
    }

    #[test]
    fn infeasible_shapes_error() {
        // Channels not a multiple of 8: no mesh plan candidates at all.
        let shape = ConvShape::new(32, 7, 7, 4, 8, 3, 3);
        assert!(matches!(autotune(&shape), Err(SwdnnError::NoPlan(_))));
    }
}
