//! `swdnn-cli` — command-line front end to the library.
//!
//! ```text
//! swdnn-cli info                      # chip constants and peaks
//! swdnn-cli run  <Ni> <No> [B] [out] [K]   # simulate one convolution
//! swdnn-cli tune <Ni> <No> [B] [out] [K]   # exhaustive plan search
//! swdnn-cli kernels [n]               # Fig. 6 annotated schedules
//! ```

use sw_perfmodel::ChipSpec;
use swdnn::tune::autotune;
use swdnn::{ConvShape, Executor};

fn usage() -> ! {
    eprintln!(
        "usage:\n  swdnn-cli info\n  swdnn-cli run  <Ni> <No> [B=128] [out=64] [K=3]\n  \
         swdnn-cli tune <Ni> <No> [B=128] [out=64] [K=3]\n  swdnn-cli kernels [n=2]"
    );
    std::process::exit(2);
}

fn parse_shape(args: &[String]) -> ConvShape {
    let get = |i: usize, d: usize| args.get(i).and_then(|s| s.parse().ok()).unwrap_or(d);
    let ni = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage());
    let no = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage());
    let b = get(2, 128);
    let out = get(3, 64);
    let k = get(4, 3);
    ConvShape::new(b, ni, no, out, out, k, k)
}

fn cmd_info() {
    let c = ChipSpec::sw26010();
    println!("SW26010 (simulated):");
    println!("  clock                {:.2} GHz", c.clock_ghz);
    println!(
        "  core groups          {} x ({} CPEs + 1 MPE)",
        c.core_groups, c.cpes_per_cg
    );
    println!(
        "  peak DP              {:.1} Gflops/CG, {:.2} Tflops/chip",
        c.peak_gflops_per_cg(),
        c.peak_tflops_chip()
    );
    println!(
        "  LDM                  {} KB/CPE ({} doubles)",
        c.ldm_bytes / 1024,
        c.ldm_doubles()
    );
    println!(
        "  DDR3                 {:.0} GB/s per CG ({:.0} GB/s chip)",
        c.ddr3_peak_gbps,
        c.total_mem_bw_gbps()
    );
    println!("  gload path           {:.0} GB/s per CG", c.gload_gbps);
    println!("  LDM<->REG            {:.1} GB/s per CPE", c.ldm_reg_gbps);
}

fn cmd_run(shape: ConvShape) {
    println!(
        "config: {shape} ({:.2} Gflop/pass)",
        shape.flops() as f64 / 1e9
    );
    let exec = Executor::new();
    match exec.run_config(&shape) {
        Ok(rep) => {
            let chip = ChipSpec::sw26010();
            println!("plan:        {}", rep.plan_name);
            println!(
                "blocking:    b_B={} b_Co={}",
                rep.blocking.b_b, rep.blocking.b_co
            );
            println!(
                "simulated:   {:.1} Gflops/CG = {:.1}% of peak ({} cycles{})",
                rep.gflops_cg,
                100.0 * rep.efficiency,
                rep.timing.cycles,
                if rep.timing.sampled { ", sampled" } else { "" }
            );
            println!("model said:  {:.1} Gflops/CG", rep.model.gflops_per_cg);
            println!(
                "traffic:     {:.1} MB get / {:.1} MB put (minimum {:.1} MB)",
                rep.timing.stats.totals.dma_get_bytes as f64 / 1e6,
                rep.timing.stats.totals.dma_put_bytes as f64 / 1e6,
                shape.min_bytes_f64() as f64 / 1e6
            );
            match exec.run_multi_cg(&shape, chip.core_groups) {
                Ok(m) => println!("chip (4 CG): {:.0} Gflops", m.gflops_chip),
                Err(e) => println!("chip (4 CG): {e}"),
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_tune(shape: ConvShape) {
    println!("config: {shape}");
    match autotune(&shape) {
        Ok(rep) => {
            println!("{:<40} {:>12} {:>10}", "candidate", "cycles", "Gflops/CG");
            for (i, c) in rep.candidates.iter().enumerate() {
                let marks = match (i == 0, rep.model_choice == Some(i)) {
                    (true, true) => "  <= best & model",
                    (true, false) => "  <= best",
                    (false, true) => "  <= model",
                    _ => "",
                };
                println!(
                    "{:<40} {:>12} {:>10.1}{marks}",
                    c.description, c.cycles, c.gflops
                );
            }
            if let Some(frac) = rep.model_fraction_of_best() {
                println!("model attains {:.0}% of the empirical best", frac * 100.0);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_kernels(n: usize) {
    use sw_isa::{naive_gemm_kernel, reordered_gemm_kernel, DualPipe, KernelSpec};
    let pipe = DualPipe::default();
    let naive = naive_gemm_kernel(KernelSpec::new(n));
    let rep = pipe.run(&naive);
    println!("== naive kernel ({n} iterations) ==");
    print!("{}", rep.annotate(&naive));
    let reord = reordered_gemm_kernel(KernelSpec::new(n));
    let rep2 = pipe.run(&reord);
    println!("\n== reordered kernel ({n} iterations) ==");
    print!("{}", rep2.annotate(&reord));
    println!(
        "\nspeedup {:.2}x ({} -> {} cycles)",
        rep.cycles as f64 / rep2.cycles as f64,
        rep.cycles,
        rep2.cycles
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("info") => cmd_info(),
        Some("run") => cmd_run(parse_shape(&args[1..])),
        Some("tune") => cmd_tune(parse_shape(&args[1..])),
        Some("kernels") => {
            let n = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
            cmd_kernels(n)
        }
        _ => usage(),
    }
}
