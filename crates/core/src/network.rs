//! Sequential networks and SGD training.
//!
//! Enough machinery to train the paper's motivating workload — a small CNN
//! classifier — end-to-end, with the convolutions optionally running on the
//! simulated SW26010 (see `examples/train_cnn.rs`).

use crate::error::SwdnnError;
use crate::layers::{Layer, SoftmaxCrossEntropy};
use sw_tensor::Tensor4;

/// A stack of layers ending in a softmax cross-entropy head.
pub struct Sequential {
    pub layers: Vec<Box<dyn Layer>>,
    pub loss: SoftmaxCrossEntropy,
}

impl Sequential {
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self {
            layers,
            loss: SoftmaxCrossEntropy::new(),
        }
    }

    /// Forward through all layers, returning the logits.
    pub fn forward(&mut self, input: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// [`Sequential::forward`] with NaN/Inf guards at every layer boundary:
    /// an activation poisoned by a numeric fault is caught at the layer
    /// that produced it, not three layers later as a useless loss value.
    pub fn forward_checked(&mut self, input: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        check_finite("network input", input.data())?;
        let mut x = input.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            x = layer.forward(&x)?;
            check_finite(&format!("layer {i} ({}) output", layer.name()), x.data())?;
        }
        Ok(x)
    }

    /// One optimizer step on a batch with a stateful [`crate::optim::Optimizer`];
    /// returns the loss before the update.
    pub fn train_step_opt(
        &mut self,
        input: &Tensor4<f64>,
        labels: &[usize],
        opt: &mut crate::optim::Optimizer,
    ) -> Result<f64, SwdnnError> {
        let logits = self.forward(input)?;
        let loss = self.loss.forward(&logits, labels)?;
        let mut grad = self.loss.backward(labels)?;
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        opt.step(&mut self.layers);
        Ok(loss)
    }

    /// [`Sequential::train_step_opt`] with NaN/Inf guards: activations are
    /// checked at every layer boundary, the loss must be finite, gradients
    /// are checked flowing back through every layer, and the optimizer
    /// refuses to apply a non-finite update
    /// ([`crate::optim::Optimizer::step_checked`]). On error the parameters
    /// are left as they were before the step.
    pub fn train_step_checked(
        &mut self,
        input: &Tensor4<f64>,
        labels: &[usize],
        opt: &mut crate::optim::Optimizer,
    ) -> Result<f64, SwdnnError> {
        let logits = self.forward_checked(input)?;
        let loss = self.loss.forward(&logits, labels)?;
        if !loss.is_finite() {
            return Err(SwdnnError::Numeric {
                context: "loss".into(),
                detail: format!("loss is {loss}"),
            });
        }
        let mut grad = self.loss.backward(labels)?;
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            grad = layer.backward(&grad)?;
            check_finite(
                &format!("layer {i} ({}) input gradient", layer.name()),
                grad.data(),
            )?;
        }
        opt.step_checked(&mut self.layers)?;
        Ok(loss)
    }

    /// One SGD step on a batch; returns the loss before the update.
    pub fn train_step(
        &mut self,
        input: &Tensor4<f64>,
        labels: &[usize],
        lr: f64,
    ) -> Result<f64, SwdnnError> {
        let logits = self.forward(input)?;
        let loss = self.loss.forward(&logits, labels)?;
        let mut grad = self.loss.backward(labels)?;
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        for layer in &mut self.layers {
            layer.sgd_step(lr);
        }
        Ok(loss)
    }

    /// Predicted classes for a batch: argmax over the logits.
    ///
    /// Reads the logits directly — the earlier implementation ran a
    /// fake-label loss forward to reach `loss.predictions()`, which both
    /// mutated the loss head's cached state between training steps and
    /// panicked via `unwrap` instead of surfacing an error.
    pub fn predict(&mut self, input: &Tensor4<f64>) -> Result<Vec<usize>, SwdnnError> {
        let logits = self.forward(input)?;
        let (batch, classes) = (logits.shape().d0, logits.shape().d1);
        if batch == 0 || classes == 0 {
            return Err(SwdnnError::ShapeMismatch {
                expected: "non-empty batch and class dimensions".into(),
                got: format!("logits {batch}x{classes}"),
            });
        }
        Ok((0..batch)
            .map(|b| {
                (0..classes)
                    .map(|c| logits.get(b, c, 0, 0))
                    .enumerate()
                    .max_by(|(_, x), (_, y)| x.total_cmp(y))
                    .map(|(c, _)| c)
                    .unwrap_or(0)
            })
            .collect())
    }

    /// Classification accuracy on a batch.
    pub fn accuracy(&mut self, input: &Tensor4<f64>, labels: &[usize]) -> Result<f64, SwdnnError> {
        if labels.is_empty() {
            return Err(SwdnnError::ShapeMismatch {
                expected: "at least one label".into(),
                got: "empty label slice".into(),
            });
        }
        let preds = self.predict(input)?;
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / labels.len() as f64)
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }
}

/// Reject the first non-finite value in `data`, naming where it appeared.
pub(crate) fn check_finite(context: &str, data: &[f64]) -> Result<(), SwdnnError> {
    match data.iter().position(|v| !v.is_finite()) {
        None => Ok(()),
        Some(i) => Err(SwdnnError::Numeric {
            context: context.to_string(),
            detail: format!("element {i} is {}", data[i]),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2dLayer, Engine, Linear, MaxPool2, ReLU};
    use sw_tensor::{ConvShape, Layout, Shape4};

    /// A linearly-separable synthetic task: class = which image half is
    /// brighter.
    fn synthetic_batch(batch: usize, seed: u64) -> (Tensor4<f64>, Vec<usize>) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let s = Shape4::new(batch, 1, 6, 6);
        let mut x = Tensor4::zeros(s, Layout::Nchw);
        let mut labels = Vec::with_capacity(batch);
        for b in 0..batch {
            let class = rng.gen_range(0..2usize);
            for r in 0..6 {
                for c in 0..6 {
                    let bright = if (class == 0) == (c < 3) { 1.0 } else { 0.1 };
                    x.set(b, 0, r, c, bright + rng.gen_range(-0.05..0.05));
                }
            }
            labels.push(class);
        }
        (x, labels)
    }

    fn small_cnn() -> Sequential {
        // 1x6x6 -> conv(2 ch, 3x3) -> 2x4x4 -> relu -> pool -> 2x2x2 -> fc(2)
        let conv =
            Conv2dLayer::new(ConvShape::new(16, 1, 2, 4, 4, 3, 3), Engine::Host, 100).unwrap();
        Sequential::new(vec![
            Box::new(conv),
            Box::new(ReLU::new()),
            Box::new(MaxPool2::new()),
            Box::new(Linear::new(2 * 2 * 2, 2, 101)),
        ])
    }

    #[test]
    fn loss_decreases_during_training() {
        let mut net = small_cnn();
        let (x, y) = synthetic_batch(16, 7);
        let first = net.train_step(&x, &y, 0.1).unwrap();
        let mut last = first;
        for _ in 0..30 {
            last = net.train_step(&x, &y, 0.1).unwrap();
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn learns_the_synthetic_task() {
        let mut net = small_cnn();
        let (x, y) = synthetic_batch(16, 8);
        for _ in 0..60 {
            net.train_step(&x, &y, 0.15).unwrap();
        }
        let (xt, yt) = synthetic_batch(16, 9);
        let acc = net.accuracy(&xt, &yt).unwrap();
        assert!(acc >= 0.85, "held-out accuracy {acc}");
    }

    #[test]
    fn checked_training_works_on_clean_data() {
        let mut net = small_cnn();
        let (x, y) = synthetic_batch(16, 7);
        let mut opt = crate::optim::Optimizer::sgd(0.1);
        let first = net.train_step_checked(&x, &y, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..30 {
            last = net.train_step_checked(&x, &y, &mut opt).unwrap();
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn checked_forward_rejects_non_finite_input() {
        let mut net = small_cnn();
        let (mut x, _) = synthetic_batch(16, 7);
        x.set(3, 0, 2, 2, f64::NAN);
        let err = net.forward_checked(&x).unwrap_err();
        assert!(matches!(err, SwdnnError::Numeric { .. }));
        assert!(err.to_string().contains("network input"), "{err}");
    }

    #[test]
    fn checked_training_names_the_poisoned_layer() {
        let mut net = small_cnn();
        let (x, y) = synthetic_batch(16, 7);
        let mut opt = crate::optim::Optimizer::sgd(0.1);
        net.train_step_checked(&x, &y, &mut opt).unwrap();
        // Poison a conv weight so the next forward produces NaN outputs.
        net.layers[0].visit_params(&mut |w, _| w[0] = f64::INFINITY);
        let err = net.train_step_checked(&x, &y, &mut opt).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("layer 0"), "guard must name the layer: {msg}");
    }

    #[test]
    fn predict_is_pure_argmax_without_touching_loss_state() {
        // Regression: predict() used to run a fake-label loss forward and
        // read loss.predictions(), mutating the head's cached state (and
        // panicking via unwrap on a fresh head). An identity network makes
        // the argmax directly checkable.
        let mut net = Sequential::new(vec![]);
        let mut x = Tensor4::zeros(Shape4::new(3, 4, 1, 1), Layout::Nchw);
        for (b, best) in [(0usize, 2usize), (1, 0), (2, 3)] {
            x.set(b, best, 0, 0, 5.0);
        }
        let preds = net.predict(&x).unwrap();
        assert_eq!(preds, vec![2, 0, 3]);
        assert!(
            net.loss.predictions().is_none(),
            "predict must not run the loss head"
        );
    }

    #[test]
    fn predict_rejects_empty_batch_instead_of_panicking() {
        let mut net = Sequential::new(vec![]);
        let x = Tensor4::zeros(Shape4::new(0, 2, 1, 1), Layout::Nchw);
        let err = net.predict(&x).unwrap_err();
        assert!(matches!(err, SwdnnError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn accuracy_rejects_empty_labels_instead_of_nan() {
        let mut net = Sequential::new(vec![]);
        let x = Tensor4::zeros(Shape4::new(2, 2, 1, 1), Layout::Nchw);
        let err = net.accuracy(&x, &[]).unwrap_err();
        assert!(matches!(err, SwdnnError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn param_count_sums_layers() {
        let net = small_cnn();
        // conv: 2*1*3*3 + 2 = 20; fc: 8*2 + 2 = 18
        assert_eq!(net.param_count(), 38);
    }
}
