//! Keyed monotonic counters for low-cardinality tag dimensions.
//!
//! [`Counter`](crate::Counter) covers the fixed, compile-time-known metrics
//! (cycles, bytes, batches). The serving layer also needs counters keyed by
//! small *runtime* dimensions — tenant id, core-group index, breaker state —
//! whose value sets are only known once traffic arrives. [`TagCounters`] is
//! that map: `bump("tenant/3/served")` creates the key on first touch and
//! increments it afterwards.
//!
//! The map is a `Mutex<BTreeMap>` rather than sharded atomics: tag bumps
//! happen on the serving engine's dispatch path (a few per *batch*, not per
//! simulated instruction), so contention is negligible, and the BTreeMap
//! keeps `snapshot()` deterministically sorted — the property the chaos
//! bench relies on when it prints and gates per-tenant totals.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Tag key for a per-chip metric (`chip/3/served`). The fleet layer keys
/// every chip-scoped counter through this so the naming stays greppable
/// and the sorted snapshot groups chips together.
pub fn chip_tag(chip: usize, metric: &str) -> String {
    format!("chip/{chip}/{metric}")
}

/// Tag key for a per-link metric (`link/tx-2/bytes`). Links are named
/// by the network resource they meter:
///
/// * `ingress-N` — the serving front-door→chip hop,
/// * `tx-N` / `rx-N` — chip N's collective send / receive port
///   (`sw_perfmodel::NetworkModel` occupancy names),
/// * `uplink-G-K` — uplink K of switch group G, the shared resource
///   cross-group traffic serializes on.
///
/// Common metrics are `bytes` (payload carried) and `busy_us`
/// (occupancy time) so the sorted snapshot reads as a per-link
/// utilization table.
pub fn link_tag(link: &str, metric: &str) -> String {
    format!("link/{link}/{metric}")
}

/// A set of named monotonic counters created on first use.
#[derive(Debug, Default)]
pub struct TagCounters {
    inner: Mutex<BTreeMap<String, u64>>,
}

impl TagCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to `key`, creating it at zero first if needed.
    pub fn add(&self, key: &str, n: u64) {
        if n == 0 {
            return;
        }
        let mut m = self.inner.lock().unwrap();
        *m.entry(key.to_string()).or_insert(0) += n;
    }

    /// Increment `key` by one.
    pub fn inc(&self, key: &str) {
        self.add(key, 1);
    }

    /// Current value of `key` (0 when never bumped).
    pub fn get(&self, key: &str) -> u64 {
        self.inner.lock().unwrap().get(key).copied().unwrap_or(0)
    }

    /// All `(key, value)` pairs in sorted key order.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }

    /// Drop every key (post-warmup measurement windows).
    pub fn reset(&self) {
        self.inner.lock().unwrap().clear();
    }
}

impl Clone for TagCounters {
    /// Cloning snapshots the current values into an independent set.
    fn clone(&self) -> Self {
        Self {
            inner: Mutex::new(self.inner.lock().unwrap().clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_appear_on_first_bump() {
        let t = TagCounters::new();
        assert_eq!(t.get("cg/0/trips"), 0);
        t.inc("cg/0/trips");
        t.add("cg/0/trips", 2);
        t.add("cg/0/trips", 0); // no-op, must not create churn
        assert_eq!(t.get("cg/0/trips"), 3);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let t = TagCounters::new();
        t.inc("tenant/2/shed");
        t.inc("tenant/0/served");
        t.add("tenant/1/served", 5);
        assert_eq!(
            t.snapshot(),
            vec![
                ("tenant/0/served".to_string(), 1),
                ("tenant/1/served".to_string(), 5),
                ("tenant/2/shed".to_string(), 1),
            ]
        );
        t.reset();
        assert!(t.is_empty());
    }

    #[test]
    fn chip_and_link_tags_sort_by_index() {
        let t = TagCounters::new();
        t.add(&chip_tag(1, "served"), 4);
        t.add(&chip_tag(0, "served"), 2);
        t.add(&link_tag("ingress-0", "bytes"), 100);
        assert_eq!(t.get("chip/0/served"), 2);
        assert_eq!(t.get("chip/1/served"), 4);
        assert_eq!(t.get("link/ingress-0/bytes"), 100);
    }

    #[test]
    fn link_classes_group_in_the_snapshot() {
        // The collective layer's resource names (tx/rx ports, group
        // uplinks) must land under the same `link/` prefix so one sorted
        // snapshot shows the whole network's utilization together.
        let t = TagCounters::new();
        t.add(&link_tag("tx-0", "bytes"), 10);
        t.add(&link_tag("rx-0", "busy_us"), 7);
        t.add(&link_tag("uplink-1-0", "bytes"), 3);
        let keys: Vec<String> = t.snapshot().into_iter().map(|(k, _)| k).collect();
        assert!(keys.iter().all(|k| k.starts_with("link/")));
        assert_eq!(t.get("link/uplink-1-0/bytes"), 3);
    }

    #[test]
    fn totals_are_thread_schedule_independent() {
        let t = std::sync::Arc::new(TagCounters::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        t.inc(&format!("worker/{}", i % 2));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.get("worker/0") + t.get("worker/1"), 2000);
    }
}
