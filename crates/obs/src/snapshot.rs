//! `BENCH_PERF.json` snapshots and the regression comparator CI gates on.
//!
//! A [`Snapshot`] is a versioned bundle of [`PerfReport`]s — one per
//! (configuration, plan) pair the bench harness runs. The committed
//! baseline lives at `results/BENCH_PERF.baseline.json`; CI regenerates a
//! fresh snapshot and calls [`compare`], which fails the build when any
//! metric drifts outside its tolerance.
//!
//! Because the whole pipeline is a deterministic simulation (cycle counts
//! and counter totals are exact, not wall-clock samples), tolerances can
//! be tight: the defaults allow 2% on throughput/cycles and essentially
//! zero drift on analytic model outputs. A legitimate change to the model
//! or the counters is expected to trip the gate — the fix is to regenerate
//! and commit the baseline alongside the change (see CONTRIBUTING.md).

use crate::report::PerfReport;
use serde_json::{object, Value};
use std::path::Path;

/// Bump when the report schema changes incompatibly; `compare` refuses to
/// diff snapshots of different versions.
pub const SNAPSHOT_VERSION: u64 = 1;

/// A versioned bundle of perf reports, the on-disk `BENCH_PERF.json`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub reports: Vec<PerfReport>,
}

impl Snapshot {
    pub fn new(reports: Vec<PerfReport>) -> Self {
        Snapshot { reports }
    }

    pub fn to_json(&self) -> Value {
        object([
            ("version", Value::from(SNAPSHOT_VERSION)),
            ("schema", Value::from("swdnn-bench-perf")),
            (
                "reports",
                Value::Array(self.reports.iter().map(PerfReport::to_json).collect()),
            ),
        ])
    }

    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json())
    }

    pub fn from_json_str(s: &str) -> Result<Snapshot, serde_json::Error> {
        let doc = serde_json::from_str(s)?;
        let bad = |msg: &str| serde_json::Error {
            msg: msg.into(),
            offset: 0,
        };
        let version = doc
            .get("version")
            .and_then(Value::as_u64)
            .ok_or_else(|| bad("missing snapshot version"))?;
        if version != SNAPSHOT_VERSION {
            return Err(bad(&format!(
                "snapshot version {version} != supported {SNAPSHOT_VERSION}; regenerate the baseline"
            )));
        }
        let reports = doc
            .get("reports")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("missing reports array"))?
            .iter()
            .map(|r| PerfReport::from_json(r).ok_or_else(|| bad("malformed perf report")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Snapshot { reports })
    }

    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut s = self.to_json_string();
        s.push('\n');
        std::fs::write(path, s)
    }

    pub fn load(path: &Path) -> Result<Snapshot, String> {
        let s = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Snapshot::from_json_str(&s).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Per-metric relative tolerances for [`compare`].
///
/// Two classes of metric get different treatment:
///
/// * **directional** metrics — measured throughput may not *drop* and
///   cycles may not *grow* beyond the tolerance; improvements pass (and
///   are listed as notes so a stale baseline is visible in CI logs);
/// * **symmetric** metrics — analytic model outputs and counter-derived
///   traffic must match the baseline in *both* directions, because any
///   drift means the model or the accounting changed and the baseline
///   must be regenerated deliberately.
#[derive(Clone, Copy, Debug)]
pub struct Tolerances {
    /// Allowed relative drop in `gflops_measured` (directional).
    pub gflops_rel: f64,
    /// Allowed relative growth in `cycles` and `time_ms` (directional).
    pub cycles_rel: f64,
    /// Allowed relative drift in measured per-level bandwidth and byte
    /// counts (symmetric).
    pub traffic_rel: f64,
    /// Allowed relative drift in analytic model outputs (symmetric).
    /// Deterministic closed forms — near zero by default.
    pub model_rel: f64,
    /// Allowed absolute growth in `ldm_high_water_frac` (directional:
    /// creeping toward the 64 KB ceiling is the regression).
    pub ldm_frac_abs: f64,
    /// Allowed relative drift in the host wall-clock block (directional:
    /// `host_secs` may not grow, `sim_gflops_per_host_sec` may not drop).
    /// Wall-clock numbers are machine- and load-dependent, so this is far
    /// looser than the simulated metrics; the sim_throughput CI gate uses
    /// the 15% default.
    pub host_rel: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            gflops_rel: 0.02,
            cycles_rel: 0.02,
            traffic_rel: 0.02,
            model_rel: 1e-9,
            ldm_frac_abs: 0.02,
            host_rel: 0.15,
        }
    }
}

/// One metric outside its tolerance.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// `PerfReport::key()` of the affected measurement.
    pub key: String,
    pub metric: String,
    pub baseline: f64,
    pub current: f64,
    /// Signed relative change, `(current - baseline) / |baseline|`
    /// (absolute change for `ldm_high_water_frac`).
    pub change: f64,
}

/// Outcome of comparing a fresh snapshot against the committed baseline.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    pub regressions: Vec<Regression>,
    /// Keys present in the baseline but absent from the fresh snapshot.
    pub missing: Vec<String>,
    /// Keys present in the fresh snapshot but absent from the baseline.
    pub extra: Vec<String>,
    /// Directional metrics that *improved* beyond tolerance — not
    /// failures, but a cue that the baseline is stale.
    pub improvements: Vec<Regression>,
}

impl CompareReport {
    /// True when CI should pass: every baseline key is present and no
    /// metric regressed. Extra keys fail too — new configurations must be
    /// added to the baseline deliberately.
    pub fn is_ok(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty() && self.extra.is_empty()
    }

    pub fn summary(&self) -> String {
        let mut s = String::new();
        if self.is_ok() {
            s.push_str("bench comparison OK: all metrics within tolerance\n");
        } else {
            s.push_str(&format!(
                "bench comparison FAILED: {} regression(s), {} missing, {} extra\n",
                self.regressions.len(),
                self.missing.len(),
                self.extra.len()
            ));
        }
        for r in &self.regressions {
            s.push_str(&format!(
                "  REGRESSION {} :: {}: {:.6} -> {:.6} ({:+.2}%)\n",
                r.key,
                r.metric,
                r.baseline,
                r.current,
                100.0 * r.change
            ));
        }
        for k in &self.missing {
            s.push_str(&format!("  MISSING   {k}\n"));
        }
        for k in &self.extra {
            s.push_str(&format!("  EXTRA     {k} (regenerate the baseline)\n"));
        }
        for r in &self.improvements {
            s.push_str(&format!(
                "  improved  {} :: {}: {:.6} -> {:.6} ({:+.2}%) — consider refreshing the baseline\n",
                r.key,
                r.metric,
                r.baseline,
                r.current,
                100.0 * r.change
            ));
        }
        s
    }
}

/// A metric that is Inf/NaN on either side is always a failure: `rel_change`
/// on such values is itself non-finite and `NaN.abs() > tol` is *false*, so
/// without this guard a poisoned snapshot (e.g. a division by a zero-cycle
/// timing upstream) would sail through the symmetric checks silently.
fn non_finite(key: &str, metric: &str, baseline: f64, current: f64) -> Option<Regression> {
    if baseline.is_finite() && current.is_finite() {
        return None;
    }
    Some(Regression {
        key: key.to_string(),
        metric: format!("{metric} (non-finite)"),
        baseline,
        current,
        change: f64::NAN,
    })
}

fn rel_change(baseline: f64, current: f64) -> f64 {
    if baseline == 0.0 {
        if current == 0.0 {
            0.0
        } else {
            f64::INFINITY * current.signum()
        }
    } else {
        (current - baseline) / baseline.abs()
    }
}

/// Diff `current` against `baseline` with per-metric tolerances.
pub fn compare(baseline: &Snapshot, current: &Snapshot, tol: &Tolerances) -> CompareReport {
    let mut out = CompareReport::default();

    let base_keys: Vec<String> = baseline.reports.iter().map(PerfReport::key).collect();
    for r in &current.reports {
        if !base_keys.contains(&r.key()) {
            out.extra.push(r.key());
        }
    }

    for b in &baseline.reports {
        let key = b.key();
        let Some(c) = current.reports.iter().find(|r| r.key() == key) else {
            out.missing.push(key);
            continue;
        };

        // Directional metric: (name, baseline, current, tolerance,
        // true = higher-is-worse).
        let directional = [
            (
                "gflops_measured",
                b.gflops_measured,
                c.gflops_measured,
                tol.gflops_rel,
                false,
            ),
            (
                "cycles",
                b.cycles as f64,
                c.cycles as f64,
                tol.cycles_rel,
                true,
            ),
            ("time_ms", b.time_ms, c.time_ms, tol.cycles_rel, true),
        ];
        for (metric, bv, cv, t, higher_is_worse) in directional {
            if let Some(r) = non_finite(&key, metric, bv, cv) {
                out.regressions.push(r);
                continue;
            }
            let change = rel_change(bv, cv);
            let worse = if higher_is_worse {
                change > t
            } else {
                change < -t
            };
            let better = if higher_is_worse {
                change < -t
            } else {
                change > t
            };
            let rec = Regression {
                key: key.clone(),
                metric: metric.to_string(),
                baseline: bv,
                current: cv,
                change,
            };
            if worse {
                out.regressions.push(rec);
            } else if better {
                out.improvements.push(rec);
            }
        }

        // Host wall-clock block (sim_throughput rows): directional at the
        // loose `host_rel` tolerance. A row that *loses* its host block
        // regressed (the gate would silently stop gating); a row that
        // gains one is just a schema extension.
        match (&b.host, &c.host) {
            (Some(bh), Some(ch)) => {
                let host = [
                    ("host.host_secs", bh.host_secs, ch.host_secs, true),
                    (
                        "host.sim_gflops_per_host_sec",
                        bh.sim_gflops_per_host_sec,
                        ch.sim_gflops_per_host_sec,
                        false,
                    ),
                ];
                for (metric, bv, cv, higher_is_worse) in host {
                    if let Some(r) = non_finite(&key, metric, bv, cv) {
                        out.regressions.push(r);
                        continue;
                    }
                    let change = rel_change(bv, cv);
                    let worse = if higher_is_worse {
                        change > tol.host_rel
                    } else {
                        change < -tol.host_rel
                    };
                    let better = if higher_is_worse {
                        change < -tol.host_rel
                    } else {
                        change > tol.host_rel
                    };
                    let rec = Regression {
                        key: key.clone(),
                        metric: metric.to_string(),
                        baseline: bv,
                        current: cv,
                        change,
                    };
                    if worse {
                        out.regressions.push(rec);
                    } else if better {
                        out.improvements.push(rec);
                    }
                }
            }
            (Some(bh), None) => out.regressions.push(Regression {
                key: key.clone(),
                metric: "host (missing)".to_string(),
                baseline: bh.host_secs,
                current: f64::NAN,
                change: f64::NAN,
            }),
            _ => {}
        }

        // Symmetric metrics: any drift beyond tolerance fails.
        let symmetric = [
            (
                "gflops_modeled",
                b.gflops_modeled,
                c.gflops_modeled,
                tol.model_rel,
            ),
            (
                "efficiency_modeled",
                b.efficiency_modeled,
                c.efficiency_modeled,
                tol.model_rel,
            ),
            (
                "mem.required_gbps",
                b.mem.required_gbps,
                c.mem.required_gbps,
                tol.model_rel,
            ),
            (
                "mem.modeled_gbps",
                b.mem.modeled_gbps,
                c.mem.modeled_gbps,
                tol.model_rel,
            ),
            (
                "reg.required_gbps",
                b.reg.required_gbps,
                c.reg.required_gbps,
                tol.model_rel,
            ),
            (
                "reg.modeled_gbps",
                b.reg.modeled_gbps,
                c.reg.modeled_gbps,
                tol.model_rel,
            ),
            (
                "mem.measured_gbps",
                b.mem.measured_gbps,
                c.mem.measured_gbps,
                tol.traffic_rel,
            ),
            (
                "reg.measured_gbps",
                b.reg.measured_gbps,
                c.reg.measured_gbps,
                tol.traffic_rel,
            ),
            (
                "mem.bytes",
                b.mem.bytes as f64,
                c.mem.bytes as f64,
                tol.traffic_rel,
            ),
            (
                "reg.bytes",
                b.reg.bytes as f64,
                c.reg.bytes as f64,
                tol.traffic_rel,
            ),
        ];
        for (metric, bv, cv, t) in symmetric {
            if let Some(r) = non_finite(&key, metric, bv, cv) {
                out.regressions.push(r);
                continue;
            }
            let change = rel_change(bv, cv);
            if change.abs() > t {
                out.regressions.push(Regression {
                    key: key.clone(),
                    metric: metric.to_string(),
                    baseline: bv,
                    current: cv,
                    change,
                });
            }
        }

        // Memory-bound classification flipping is a model change.
        if b.memory_bound != c.memory_bound {
            out.regressions.push(Regression {
                key: key.clone(),
                metric: "memory_bound".to_string(),
                baseline: b.memory_bound as u64 as f64,
                current: c.memory_bound as u64 as f64,
                change: f64::NAN,
            });
        }

        // LDM occupancy: absolute growth toward the 64 KB ceiling.
        if let Some(r) = non_finite(
            &key,
            "ldm_high_water_frac",
            b.ldm_high_water_frac,
            c.ldm_high_water_frac,
        ) {
            out.regressions.push(r);
            continue;
        }
        let dfrac = c.ldm_high_water_frac - b.ldm_high_water_frac;
        if dfrac > tol.ldm_frac_abs {
            out.regressions.push(Regression {
                key: key.clone(),
                metric: "ldm_high_water_frac".to_string(),
                baseline: b.ldm_high_water_frac,
                current: c.ldm_high_water_frac,
                change: dfrac,
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::Level;
    use crate::report::LevelIo;

    fn report(config: &str, plan: &str) -> PerfReport {
        PerfReport {
            config: config.to_string(),
            plan: plan.to_string(),
            cycles: 1_000_000,
            time_ms: 0.69,
            gflops_measured: 300.0,
            gflops_modeled: 371.25,
            efficiency_modeled: 0.82,
            memory_bound: false,
            ldm_high_water_frac: 0.70,
            mem: LevelIo {
                level: Level::Mem,
                required_gbps: 14.8,
                modeled_gbps: 27.9,
                measured_gbps: 13.2,
                bytes: 1 << 24,
            },
            reg: LevelIo {
                level: Level::Reg,
                required_gbps: 11.6,
                modeled_gbps: 23.2,
                measured_gbps: 15.4,
                bytes: 1 << 26,
            },
            counters: vec![("dma_get_bytes".into(), 1 << 24)],
            host: None,
        }
    }

    fn snapshot() -> Snapshot {
        Snapshot::new(vec![
            report("B128", "image_aware"),
            report("B128", "batch_aware"),
        ])
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let s = snapshot();
        let back = Snapshot::from_json_str(&s.to_json_string()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut doc = snapshot().to_json_string();
        doc = doc.replace("\"version\": 1", "\"version\": 99");
        let err = Snapshot::from_json_str(&doc).unwrap_err();
        assert!(err.msg.contains("version 99"));
    }

    #[test]
    fn identical_snapshots_compare_ok() {
        let s = snapshot();
        let report = compare(&s, &s.clone(), &Tolerances::default());
        assert!(report.is_ok(), "{}", report.summary());
        assert!(report.summary().contains("OK"));
    }

    #[test]
    fn injected_throughput_regression_is_caught() {
        let base = snapshot();
        let mut cur = base.clone();
        cur.reports[0].gflops_measured *= 0.90; // 10% drop > 2% tolerance
        let report = compare(&base, &cur, &Tolerances::default());
        assert!(!report.is_ok());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].metric, "gflops_measured");
        assert!(report.summary().contains("REGRESSION"));
    }

    #[test]
    fn improvement_is_not_a_failure_but_is_noted() {
        let base = snapshot();
        let mut cur = base.clone();
        cur.reports[0].gflops_measured *= 1.10;
        let report = compare(&base, &cur, &Tolerances::default());
        assert!(report.is_ok());
        assert_eq!(report.improvements.len(), 1);
        assert!(report.summary().contains("refreshing the baseline"));
    }

    #[test]
    fn model_drift_fails_in_both_directions() {
        let base = snapshot();
        for factor in [0.99, 1.01] {
            let mut cur = base.clone();
            cur.reports[1].reg.modeled_gbps *= factor;
            let report = compare(&base, &cur, &Tolerances::default());
            assert!(report
                .regressions
                .iter()
                .any(|r| r.metric == "reg.modeled_gbps"));
        }
    }

    #[test]
    fn non_finite_metrics_are_rejected_not_silently_passed() {
        // Regression: NaN relative change failed both `> t` comparisons, so
        // a poisoned snapshot compared clean. Every class of check must
        // flag Inf/NaN explicitly.
        let base = snapshot();
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut cur = base.clone();
            cur.reports[0].gflops_measured = poison; // directional
            cur.reports[0].mem.measured_gbps = poison; // symmetric
            cur.reports[0].ldm_high_water_frac = poison; // absolute
            let report = compare(&base, &cur, &Tolerances::default());
            assert!(!report.is_ok(), "poison {poison} passed the comparator");
            let metrics: Vec<&str> = report
                .regressions
                .iter()
                .map(|r| r.metric.as_str())
                .collect();
            assert!(metrics.contains(&"gflops_measured (non-finite)"));
            assert!(metrics.contains(&"mem.measured_gbps (non-finite)"));
            assert!(metrics.contains(&"ldm_high_water_frac (non-finite)"));
        }
        // A poisoned *baseline* must fail too, not act as a wildcard.
        let mut bad_base = base.clone();
        bad_base.reports[1].gflops_modeled = f64::NAN;
        let report = compare(&bad_base, &base, &Tolerances::default());
        assert!(!report.is_ok());
    }

    #[test]
    fn missing_and_extra_configs_fail() {
        let base = snapshot();
        let mut cur = base.clone();
        cur.reports.remove(1);
        cur.reports.push(report("B256", "image_aware"));
        let report = compare(&base, &cur, &Tolerances::default());
        assert!(!report.is_ok());
        assert_eq!(report.missing, vec!["B128 / batch_aware".to_string()]);
        assert_eq!(report.extra, vec!["B256 / image_aware".to_string()]);
    }

    #[test]
    fn cycle_growth_and_ldm_creep_are_regressions() {
        let base = snapshot();
        let mut cur = base.clone();
        cur.reports[0].cycles = 1_100_000; // +10%
        cur.reports[0].ldm_high_water_frac = 0.95; // +0.25 absolute
        let report = compare(&base, &cur, &Tolerances::default());
        let metrics: Vec<&str> = report
            .regressions
            .iter()
            .map(|r| r.metric.as_str())
            .collect();
        assert!(metrics.contains(&"cycles"));
        assert!(metrics.contains(&"ldm_high_water_frac"));
    }

    #[test]
    fn host_wallclock_is_gated_loosely_and_directionally() {
        use crate::report::HostPerf;
        let mut base = snapshot();
        base.reports[0].host = Some(HostPerf {
            host_secs: 2.0,
            sim_gflops_per_host_sec: 100.0,
        });
        // Within 15%: noise, not a regression.
        let mut cur = base.clone();
        cur.reports[0].host = Some(HostPerf {
            host_secs: 2.2,
            sim_gflops_per_host_sec: 91.0,
        });
        assert!(compare(&base, &cur, &Tolerances::default()).is_ok());
        // Beyond 15% slower: regression on both host metrics.
        cur.reports[0].host = Some(HostPerf {
            host_secs: 2.5,
            sim_gflops_per_host_sec: 80.0,
        });
        let rep = compare(&base, &cur, &Tolerances::default());
        let metrics: Vec<&str> = rep.regressions.iter().map(|r| r.metric.as_str()).collect();
        assert!(metrics.contains(&"host.host_secs"));
        assert!(metrics.contains(&"host.sim_gflops_per_host_sec"));
        // Beyond 15% faster: improvement note, still OK.
        cur.reports[0].host = Some(HostPerf {
            host_secs: 1.0,
            sim_gflops_per_host_sec: 200.0,
        });
        let rep = compare(&base, &cur, &Tolerances::default());
        assert!(rep.is_ok());
        assert_eq!(rep.improvements.len(), 2);
        // Dropping the block entirely regressed the gate itself.
        cur.reports[0].host = None;
        assert!(!compare(&base, &cur, &Tolerances::default()).is_ok());
        // A baseline without host blocks never requires one.
        let plain = snapshot();
        assert!(compare(&plain, &base, &Tolerances::default()).is_ok());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("sw_obs_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_PERF.json");
        let s = snapshot();
        s.save(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), s);
        std::fs::remove_file(&path).ok();
    }
}
