//! The paper's three memory-hierarchy levels (§III-D, Fig. 2).
//!
//! Every counter the workspace records maps onto exactly one level, so a
//! [`crate::PerfReport`] can aggregate measured traffic per level and put
//! it next to the analytic model's required/measured bandwidth for the
//! same level:
//!
//! | level | link it owns        | counters mapped here |
//! |-------|---------------------|----------------------|
//! | REG   | LDM → register file | `ldm_reg_bytes` (vload/vldde/vstore traffic, Eq. 5 accounting), `p0_issue_slots`, `p1_issue_slots`, `bus_vectors_sent/received` (register-bus hops) |
//! | LDM   | scratchpad residency| LDM high-water occupancy, `dma_stall_cycles` (waits for LDM fills) |
//! | MEM   | MEM → LDM via DMA   | `dma_get_bytes`, `dma_put_bytes`, `dma_requests`, retry/stall counters |

use std::fmt;

/// One level of the REG–LDM–MEM hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Register file; owns the LDM→REG link (Eqs. 3–5).
    Reg,
    /// The 64 KB per-CPE scratchpad; owns residency/occupancy.
    Ldm,
    /// Main memory; owns the MEM→LDM DMA link (Eqs. 1–2, Table II).
    Mem,
}

impl Level {
    pub const ALL: [Level; 3] = [Level::Reg, Level::Ldm, Level::Mem];

    /// Stable lowercase name used in JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            Level::Reg => "reg",
            Level::Ldm => "ldm",
            Level::Mem => "mem",
        }
    }

    /// Parse the JSON export name back.
    pub fn from_name(s: &str) -> Option<Level> {
        Level::ALL.into_iter().find(|l| l.name() == s)
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Reg => "REG",
            Level::Ldm => "LDM",
            Level::Mem => "MEM",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for l in Level::ALL {
            assert_eq!(Level::from_name(l.name()), Some(l));
        }
        assert_eq!(Level::from_name("cache"), None);
    }

    #[test]
    fn display_is_uppercase() {
        assert_eq!(Level::Mem.to_string(), "MEM");
    }
}
