//! Unified observability for the swDNN reproduction.
//!
//! The paper's central artifact is a three-level REG–LDM–MEM performance
//! model (Fig. 2, Eqs. 1–5) that predicts convolution throughput from
//! required vs. measured bandwidth at each level of the memory hierarchy.
//! This crate makes that comparison *continuously measurable* instead of a
//! one-off table:
//!
//! * [`counter`] — monotonic counters on relaxed atomics, safe to bump from
//!   the pool-parallel CPE closures of the simulator without any ordering
//!   dependence on thread scheduling;
//! * [`level`] — the three paper levels and the mapping every counter
//!   declares onto them;
//! * [`tags`] — keyed monotonic counters ([`TagCounters`]) for
//!   low-cardinality runtime dimensions (tenant id, core-group index),
//!   feeding the serving layer's per-tenant/per-CG health accounting;
//! * [`chrome`] — span-style event recording ([`Recorder`], zero-cost when
//!   disabled) and a Chrome-trace JSON exporter whose output loads directly
//!   into `chrome://tracing` / Perfetto;
//! * [`report`] — [`PerfReport`]: per-level measured RBW/MBW next to the
//!   analytic model's prediction for one convolution configuration;
//! * [`snapshot`] — [`Snapshot`]: a machine-readable `BENCH_PERF.json`
//!   bundle of reports plus [`snapshot::compare`], the per-metric-tolerance
//!   comparator that CI's `bench-regression` job gates on.
//!
//! The crate depends only on the offline `serde_json` shim, so every other
//! workspace member (simulator, ISA model, executor, bench harness) can
//! link it without cycles.

pub mod chrome;
pub mod counter;
pub mod level;
pub mod report;
pub mod snapshot;
pub mod tags;

pub use chrome::{ChromeEvent, ChromeTrace, Recorder};
pub use counter::Counter;
pub use level::Level;
pub use report::{HostPerf, LevelIo, PerfReport};
pub use snapshot::{compare, CompareReport, Snapshot, Tolerances};
pub use tags::{chip_tag, link_tag, TagCounters};
