//! [`PerfReport`]: one convolution configuration's measured counters put
//! next to the analytic model's prediction, per memory-hierarchy level.
//!
//! The paper's Fig. 2 model predicts attainable performance from the ratio
//! of measured to required bandwidth at each REG/LDM/MEM level. A report
//! closes the loop: the simulator's counters give *measured* traffic and
//! time, the `perfmodel` crate gives *required* (RBW) and *modeled* (MBW)
//! bandwidth, and the report serializes all three side by side so a human
//! (via [`PerfReport::summary`]) or CI (via `crate::snapshot::compare`)
//! can see whether implementation and model still agree.

use crate::level::Level;
use serde_json::{object, Value};

/// Measured-vs-modeled traffic across one link of the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelIo {
    pub level: Level,
    /// RBW: bandwidth the algorithm *needs* at this level to keep the
    /// pipelines busy (model, Eqs. 1/3/5). GB/s.
    pub required_gbps: f64,
    /// MBW the model credits the hardware with at this level (Table II
    /// DMA curve for MEM, Eq. 5 closed form for REG). GB/s.
    pub modeled_gbps: f64,
    /// Bandwidth actually observed: counter bytes over measured time. GB/s.
    pub measured_gbps: f64,
    /// Raw bytes the counters recorded across this link.
    pub bytes: u64,
}

impl LevelIo {
    pub fn zero(level: Level) -> Self {
        LevelIo {
            level,
            required_gbps: 0.0,
            modeled_gbps: 0.0,
            measured_gbps: 0.0,
            bytes: 0,
        }
    }

    /// measured / modeled — how much of the model's credited bandwidth the
    /// implementation actually sustains (0 when the model credits none).
    pub fn attainment(&self) -> f64 {
        if self.modeled_gbps > 0.0 {
            self.measured_gbps / self.modeled_gbps
        } else {
            0.0
        }
    }

    pub fn to_json(&self) -> Value {
        object([
            ("level", Value::from(self.level.name())),
            ("required_gbps", Value::from(self.required_gbps)),
            ("modeled_gbps", Value::from(self.modeled_gbps)),
            ("measured_gbps", Value::from(self.measured_gbps)),
            ("bytes", Value::from(self.bytes)),
        ])
    }

    pub fn from_json(v: &Value) -> Option<LevelIo> {
        Some(LevelIo {
            level: Level::from_name(v.get("level")?.as_str()?)?,
            required_gbps: v.get("required_gbps")?.as_f64()?,
            modeled_gbps: v.get("modeled_gbps")?.as_f64()?,
            measured_gbps: v.get("measured_gbps")?.as_f64()?,
            bytes: v.get("bytes")?.as_u64()?,
        })
    }
}

/// Host-side (wall-clock) cost of producing a simulated measurement.
///
/// Everything else in a report is derived from the deterministic
/// simulation and can be gated tightly; these two numbers measure the
/// *simulator itself* on whatever machine ran it, so they are compared
/// with the loose, directional [`crate::Tolerances::host_rel`] and the
/// baseline must be regenerated when the bench hardware changes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostPerf {
    /// Wall-clock seconds the host spent producing this measurement.
    pub host_secs: f64,
    /// Simulated Gflop of useful work per host second — the simulator's
    /// own throughput, the metric the sim_throughput gate protects.
    pub sim_gflops_per_host_sec: f64,
}

impl HostPerf {
    pub fn to_json(&self) -> Value {
        object([
            ("host_secs", Value::from(self.host_secs)),
            (
                "sim_gflops_per_host_sec",
                Value::from(self.sim_gflops_per_host_sec),
            ),
        ])
    }

    pub fn from_json(v: &Value) -> Option<HostPerf> {
        Some(HostPerf {
            host_secs: v.get("host_secs")?.as_f64()?,
            sim_gflops_per_host_sec: v.get("sim_gflops_per_host_sec")?.as_f64()?,
        })
    }
}

/// Full measured-vs-modeled record for one (configuration, plan) pair.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfReport {
    /// Stable configuration label, e.g. `"B128 Ni128 No128 R64 K3"`.
    pub config: String,
    /// Plan that produced the measurement (`image_aware`, `batch_aware`, ...).
    pub plan: String,
    /// Simulated CPE-cluster cycles for the run.
    pub cycles: u64,
    /// Wall time the cycles correspond to at the chip clock, in ms.
    pub time_ms: f64,
    /// Throughput computed from counted flops over simulated time.
    pub gflops_measured: f64,
    /// Throughput the analytic model predicts for this configuration.
    pub gflops_modeled: f64,
    /// Model's execution efficiency (Eq. 4 pipeline utilization term).
    pub efficiency_modeled: f64,
    /// Whether the model classifies this configuration as memory-bound.
    pub memory_bound: bool,
    /// Peak LDM occupancy as a fraction of the 64 KB scratchpad.
    pub ldm_high_water_frac: f64,
    /// MEM→LDM link (DMA traffic).
    pub mem: LevelIo,
    /// LDM→REG link (vector load/store traffic, Eq. 5 accounting).
    pub reg: LevelIo,
    /// Raw counter dump, name → value, for drill-down and trace args.
    pub counters: Vec<(String, u64)>,
    /// Host wall-clock cost of the measurement (sim_throughput rows only;
    /// `None` for purely simulated rows, and omitted from the JSON).
    pub host: Option<HostPerf>,
}

impl PerfReport {
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("config", Value::from(self.config.as_str())),
            ("plan", Value::from(self.plan.as_str())),
            ("cycles", Value::from(self.cycles)),
            ("time_ms", Value::from(self.time_ms)),
            ("gflops_measured", Value::from(self.gflops_measured)),
            ("gflops_modeled", Value::from(self.gflops_modeled)),
            ("efficiency_modeled", Value::from(self.efficiency_modeled)),
            ("memory_bound", Value::from(self.memory_bound)),
            ("ldm_high_water_frac", Value::from(self.ldm_high_water_frac)),
            ("mem", self.mem.to_json()),
            ("reg", self.reg.to_json()),
            (
                "counters",
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(*v)))
                        .collect(),
                ),
            ),
        ];
        if let Some(h) = &self.host {
            pairs.push(("host", h.to_json()));
        }
        object(pairs)
    }

    pub fn from_json(v: &Value) -> Option<PerfReport> {
        Some(PerfReport {
            config: v.get("config")?.as_str()?.to_string(),
            plan: v.get("plan")?.as_str()?.to_string(),
            cycles: v.get("cycles")?.as_u64()?,
            time_ms: v.get("time_ms")?.as_f64()?,
            gflops_measured: v.get("gflops_measured")?.as_f64()?,
            gflops_modeled: v.get("gflops_modeled")?.as_f64()?,
            efficiency_modeled: v.get("efficiency_modeled")?.as_f64()?,
            memory_bound: v.get("memory_bound")?.as_bool()?,
            ldm_high_water_frac: v.get("ldm_high_water_frac")?.as_f64()?,
            mem: LevelIo::from_json(v.get("mem")?)?,
            reg: LevelIo::from_json(v.get("reg")?)?,
            counters: v
                .get("counters")?
                .as_object()?
                .iter()
                .map(|(k, val)| Some((k.clone(), val.as_u64()?)))
                .collect::<Option<Vec<_>>>()?,
            host: match v.get("host") {
                Some(h) => Some(HostPerf::from_json(h)?),
                None => None,
            },
        })
    }

    /// Stable identity of the measurement within a snapshot.
    pub fn key(&self) -> String {
        format!("{} / {}", self.config, self.plan)
    }

    /// Human-readable one-screen summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{} [{}]: {:.1} GF/s measured vs {:.1} GF/s modeled ({:.1}% of model), {} cycles, {:.3} ms\n",
            self.config,
            self.plan,
            self.gflops_measured,
            self.gflops_modeled,
            if self.gflops_modeled > 0.0 {
                100.0 * self.gflops_measured / self.gflops_modeled
            } else {
                0.0
            },
            self.cycles,
            self.time_ms,
        ));
        for io in [&self.mem, &self.reg] {
            s.push_str(&format!(
                "  {}: required {:>7.1} GB/s | modeled {:>7.1} GB/s | measured {:>7.1} GB/s ({} bytes)\n",
                io.level, io.required_gbps, io.modeled_gbps, io.measured_gbps, io.bytes,
            ));
        }
        s.push_str(&format!(
            "  LDM high water {:.1}% of 64 KB; model EE {:.3}; {}\n",
            100.0 * self.ldm_high_water_frac,
            self.efficiency_modeled,
            if self.memory_bound {
                "memory-bound"
            } else {
                "compute-bound"
            },
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_report(config: &str, plan: &str) -> PerfReport {
        PerfReport {
            config: config.to_string(),
            plan: plan.to_string(),
            cycles: 3_200_000,
            time_ms: 2.206,
            gflops_measured: 310.5,
            gflops_modeled: 371.25,
            efficiency_modeled: 0.82,
            memory_bound: false,
            ldm_high_water_frac: 0.74,
            mem: LevelIo {
                level: Level::Mem,
                required_gbps: 14.8,
                modeled_gbps: 27.9,
                measured_gbps: 13.2,
                bytes: 29_360_128,
            },
            reg: LevelIo {
                level: Level::Reg,
                required_gbps: 11.6,
                modeled_gbps: 23.2,
                measured_gbps: 15.4,
                bytes: 67_108_864,
            },
            counters: vec![
                ("dma_get_bytes".into(), 25_165_824),
                ("vfmadd_issued".into(), 1_048_576),
            ],
            host: None,
        }
    }

    #[test]
    fn host_block_round_trips_and_is_omitted_when_absent() {
        let mut r = sample_report("c", "p");
        assert!(!serde_json::to_string(&r.to_json()).contains("host_secs"));
        r.host = Some(HostPerf {
            host_secs: 1.25,
            sim_gflops_per_host_sec: 42.0,
        });
        let s = serde_json::to_string(&r.to_json());
        assert!(s.contains("sim_gflops_per_host_sec"));
        let back = PerfReport::from_json(&serde_json::from_str(&s).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample_report("B128 Ni128 No128 R64 K3", "image_aware");
        let s = serde_json::to_string(&r.to_json());
        let back = PerfReport::from_json(&serde_json::from_str(&s).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn attainment_is_measured_over_modeled() {
        let r = sample_report("c", "p");
        assert!((r.reg.attainment() - 15.4 / 23.2).abs() < 1e-12);
        assert_eq!(LevelIo::zero(Level::Ldm).attainment(), 0.0);
    }

    #[test]
    fn summary_mentions_levels_and_plan() {
        let s = sample_report("B64", "batch_aware").summary();
        assert!(s.contains("batch_aware"));
        assert!(s.contains("MEM:"));
        assert!(s.contains("REG:"));
        assert!(s.contains("compute-bound"));
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let v = serde_json::from_str("{\"config\": \"x\"}").unwrap();
        assert!(PerfReport::from_json(&v).is_none());
    }
}
