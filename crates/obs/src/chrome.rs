//! Span-style event recording with Chrome-trace JSON export.
//!
//! The export follows the Trace Event Format's JSON-object flavor
//! (`{"traceEvents": [...]}`), which loads directly in `chrome://tracing`
//! and Perfetto. Two phases cover everything this workspace records:
//! `"X"` (complete: a span with `ts` + `dur`) and `"i"` (instant). The
//! `pid` axis is used for the core group, `tid` for the CPE (or a logical
//! actor like the resilient executor), and timestamps are microseconds of
//! *simulated* time.
//!
//! [`Recorder`] is the zero-cost-when-disabled entry point: every record
//! call starts with a branch on `enabled` and allocates nothing when off,
//! so instrumented hot paths cost one predictable branch in production.

use crate::level::Level;
use serde_json::{object, Value};

/// One trace event. `args` carry counter values and labels; they show in
/// the `chrome://tracing` detail pane when the event is selected.
#[derive(Clone, Debug, PartialEq)]
pub struct ChromeEvent {
    pub name: String,
    /// Comma-free category tag; we use the paper level names (`reg`,
    /// `ldm`, `mem`) plus `exec` for executor-level events.
    pub cat: String,
    /// `'X'` (complete) or `'i'` (instant).
    pub ph: char,
    /// Microseconds of simulated time.
    pub ts_us: f64,
    /// Duration in microseconds (complete events only; 0 for instants).
    pub dur_us: f64,
    pub pid: u64,
    pub tid: u64,
    pub args: Vec<(String, Value)>,
}

impl ChromeEvent {
    fn to_json(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = vec![
            ("name".into(), Value::from(self.name.as_str())),
            ("cat".into(), Value::from(self.cat.as_str())),
            ("ph".into(), Value::from(self.ph.to_string())),
            ("ts".into(), Value::from(self.ts_us)),
            ("pid".into(), Value::from(self.pid)),
            ("tid".into(), Value::from(self.tid)),
        ];
        if self.ph == 'X' {
            pairs.insert(4, ("dur".into(), Value::from(self.dur_us)));
        }
        if !self.args.is_empty() {
            pairs.push((
                "args".into(),
                Value::Object(
                    self.args
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                ),
            ));
        }
        Value::Object(pairs)
    }

    fn from_json(v: &Value) -> Option<ChromeEvent> {
        Some(ChromeEvent {
            name: v.get("name")?.as_str()?.to_string(),
            cat: v.get("cat")?.as_str()?.to_string(),
            ph: v.get("ph")?.as_str()?.chars().next()?,
            ts_us: v.get("ts")?.as_f64()?,
            dur_us: v.get("dur").and_then(Value::as_f64).unwrap_or(0.0),
            pid: v.get("pid")?.as_u64()?,
            tid: v.get("tid")?.as_u64()?,
            args: v
                .get("args")
                .and_then(Value::as_object)
                .map(|pairs| pairs.to_vec())
                .unwrap_or_default(),
        })
    }
}

/// An ordered collection of trace events plus the export/import logic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChromeTrace {
    pub events: Vec<ChromeEvent>,
}

impl ChromeTrace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, e: ChromeEvent) {
        self.events.push(e);
    }

    /// Merge another trace (e.g. per-CPE traces into a mesh trace).
    pub fn extend(&mut self, other: ChromeTrace) {
        self.events.extend(other.events);
    }

    /// Rewrite every event's `pid` to `pid`, returning `self` for
    /// chaining. Single-chip recorders emit everything under pid 0; the
    /// cluster layer claims one pid per chip before merging so cross-chip
    /// spans land on separate process tracks in `chrome://tracing`.
    pub fn with_pid(mut self, pid: u64) -> ChromeTrace {
        for e in &mut self.events {
            e.pid = pid;
        }
        self
    }

    /// Merge per-chip traces into one fleet trace, assigning each input
    /// trace's events to its index as `pid` and sorting by timestamp so
    /// the merged export reads as one timeline.
    pub fn merge_per_chip(traces: Vec<ChromeTrace>) -> ChromeTrace {
        let mut merged = ChromeTrace::new();
        for (chip, t) in traces.into_iter().enumerate() {
            merged.extend(t.with_pid(chip as u64));
        }
        merged.events.sort_by(|a, b| {
            a.ts_us
                .partial_cmp(&b.ts_us)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        merged
    }

    /// The `{"traceEvents": [...]}` document.
    pub fn to_json(&self) -> Value {
        object([
            (
                "traceEvents",
                Value::Array(self.events.iter().map(ChromeEvent::to_json).collect()),
            ),
            ("displayTimeUnit", Value::from("ns")),
        ])
    }

    /// Compact JSON string, loadable by `chrome://tracing`.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string(&self.to_json())
    }

    /// Parse a trace document produced by [`Self::to_json_string`].
    pub fn from_json_str(s: &str) -> Result<ChromeTrace, serde_json::Error> {
        let doc = serde_json::from_str(s)?;
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .ok_or(serde_json::Error {
                msg: "missing traceEvents array".into(),
                offset: 0,
            })?;
        let events = events
            .iter()
            .map(|e| {
                ChromeEvent::from_json(e).ok_or(serde_json::Error {
                    msg: "malformed trace event".into(),
                    offset: 0,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ChromeTrace { events })
    }

    /// Total span time per category — a quick where-did-the-time-go view.
    pub fn category_dur_us(&self, cat: &str) -> f64 {
        self.events
            .iter()
            .filter(|e| e.cat == cat && e.ph == 'X')
            .map(|e| e.dur_us)
            .sum()
    }
}

/// Structured event recorder: zero-cost when disabled.
///
/// Timestamps are supplied by the caller in whatever monotonic unit the
/// caller owns (simulated cycles converted to µs for the mesh, attempt
/// ordinals for the resilient executor) — the recorder imposes no clock.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    enabled: bool,
    trace: ChromeTrace,
}

impl Recorder {
    /// A recorder that drops everything (the production default).
    pub fn disabled() -> Self {
        Self::default()
    }

    pub fn enabled() -> Self {
        Self {
            enabled: true,
            trace: ChromeTrace::new(),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a complete span (`ph: "X"`) categorized by hierarchy level.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        name: &str,
        level: Level,
        pid: u64,
        tid: u64,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, Value)>,
    ) {
        self.span_cat(name, level.name(), pid, tid, ts_us, dur_us, args);
    }

    /// Record a complete span under a free-form category (for tracks that
    /// are not one of the three hierarchy levels, e.g. `"exec"`).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span_cat(
        &mut self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, Value)>,
    ) {
        if !self.enabled {
            return;
        }
        self.trace.push(ChromeEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            ts_us,
            dur_us,
            pid,
            tid,
            args,
        });
    }

    /// Record an instant event (`ph: "i"`).
    #[inline]
    pub fn instant(
        &mut self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: f64,
        args: Vec<(String, Value)>,
    ) {
        if !self.enabled {
            return;
        }
        self.trace.push(ChromeEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'i',
            ts_us,
            dur_us: 0.0,
            pid,
            tid,
            args,
        });
    }

    /// Take the recorded trace, leaving the recorder empty but still
    /// enabled/disabled as before.
    pub fn take(&mut self) -> ChromeTrace {
        std::mem::take(&mut self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChromeTrace {
        let mut t = ChromeTrace::new();
        t.push(ChromeEvent {
            name: "compute".into(),
            cat: "reg".into(),
            ph: 'X',
            ts_us: 1.5,
            dur_us: 2.25,
            pid: 0,
            tid: 13,
            args: vec![("cycles".into(), Value::from(3262u64))],
        });
        t.push(ChromeEvent {
            name: "dma_get".into(),
            cat: "mem".into(),
            ph: 'i',
            ts_us: 4.0,
            dur_us: 0.0,
            pid: 0,
            tid: 13,
            args: vec![],
        });
        t
    }

    #[test]
    fn trace_round_trips_through_serde_json() {
        let t = sample();
        let s = t.to_json_string();
        let back = ChromeTrace::from_json_str(&s).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn export_is_chrome_loadable_shape() {
        let s = sample().to_json_string();
        let doc = serde_json::from_str(&s).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        let first = &events[0];
        assert_eq!(first.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(first.get("dur").unwrap().as_f64(), Some(2.25));
        assert_eq!(first.get("tid").unwrap().as_u64(), Some(13));
        // Instant events omit dur.
        assert!(events[1].get("dur").is_none());
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::disabled();
        r.span("x", Level::Mem, 0, 0, 0.0, 1.0, vec![]);
        r.instant("y", "exec", 0, 0, 0.0, vec![]);
        assert!(r.take().events.is_empty());
    }

    #[test]
    fn enabled_recorder_accumulates_and_takes() {
        let mut r = Recorder::enabled();
        r.span("x", Level::Reg, 0, 1, 0.0, 5.0, vec![]);
        r.instant("y", "exec", 0, 1, 2.0, vec![]);
        let t = r.take();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.category_dur_us("reg"), 5.0);
        assert!(r.take().events.is_empty(), "take drains");
        assert!(r.is_enabled());
    }

    #[test]
    fn merge_per_chip_assigns_pids_and_sorts() {
        let mut a = ChromeTrace::new();
        a.push(ChromeEvent {
            name: "batch".into(),
            cat: "serve".into(),
            ph: 'X',
            ts_us: 10.0,
            dur_us: 1.0,
            pid: 0,
            tid: 0,
            args: vec![],
        });
        let mut b = ChromeTrace::new();
        b.push(ChromeEvent {
            name: "batch".into(),
            cat: "serve".into(),
            ph: 'X',
            ts_us: 5.0,
            dur_us: 1.0,
            pid: 0,
            tid: 0,
            args: vec![],
        });
        let merged = ChromeTrace::merge_per_chip(vec![a, b]);
        assert_eq!(merged.events.len(), 2);
        assert_eq!(merged.events[0].ts_us, 5.0, "sorted by timestamp");
        assert_eq!(merged.events[0].pid, 1, "second trace is chip 1");
        assert_eq!(merged.events[1].pid, 0);
    }

    #[test]
    fn malformed_documents_are_errors() {
        assert!(ChromeTrace::from_json_str("{}").is_err());
        assert!(ChromeTrace::from_json_str("{\"traceEvents\": [{}]}").is_err());
        assert!(ChromeTrace::from_json_str("not json").is_err());
    }
}
