//! Monotonic counters on relaxed atomics.
//!
//! The simulator's per-CPE closures run on a worker pool; a counter bumped
//! from
//! several threads must produce the same total regardless of scheduling.
//! `fetch_add(Relaxed)` gives exactly that: addition is commutative and
//! associative, so the final value is schedule-independent even though no
//! ordering is imposed — the property `swsim`'s determinism tests assert.
//!
//! Counters are *monotonic by convention*: the API offers `add` and
//! `reset`, not `sub` or `store`, so a snapshot taken at any quiescent
//! point is a consistent prefix sum.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event/byte/cycle counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add `n` (relaxed; safe from any thread).
    #[inline]
    pub fn add(&self, n: u64) {
        // A zero add is common on hot paths (e.g. "stall of 0 cycles");
        // skip the RMW so disabled/no-op paths stay free of contention.
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value (relaxed load; exact once the producers are quiescent,
    /// e.g. at a superstep barrier).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (for reusing a mesh between runs).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Clone for Counter {
    /// Cloning snapshots the current value into an independent counter.
    fn clone(&self) -> Self {
        Self(AtomicU64::new(self.get()))
    }
}

impl From<u64> for Counter {
    fn from(v: u64) -> Self {
        Self(AtomicU64::new(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn add_and_get() {
        let c = Counter::new();
        c.add(5);
        c.add(0); // no-op fast path
        c.inc();
        assert_eq!(c.get(), 6);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn clone_is_a_snapshot() {
        let c = Counter::from(7);
        let snap = c.clone();
        c.add(1);
        assert_eq!(snap.get(), 7);
        assert_eq!(c.get(), 8);
    }

    #[test]
    fn totals_are_thread_schedule_independent() {
        // 8 threads x 1000 adds of 3: total must be exact on every run.
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add(3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8 * 1000 * 3);
    }
}
