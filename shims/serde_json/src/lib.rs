//! Offline stand-in for `serde_json`, exposing the self-describing
//! [`Value`] subset this workspace uses: building JSON documents
//! programmatically, serializing them (`to_string` / `to_string_pretty`),
//! and parsing them back (`from_str`).
//!
//! The build environment has no network access and no vendored registry,
//! so external crates are replaced by API-compatible local shims (see
//! CONTRIBUTING.md "Offline builds"). There is no derive machinery here —
//! callers convert their types to and from `Value` explicitly, which is
//! exactly how the observability layer's exporters are written.
//!
//! Semantics that matter to this workspace and are preserved:
//!
//! * objects keep **insertion order** (like `serde_json`'s `preserve_order`
//!   feature), so exported snapshots diff cleanly in review;
//! * numbers are `f64`, serialized losslessly for integers up to 2^53 —
//!   every counter this workspace exports fits (cycle counts would need
//!   ~200 years of simulated time to overflow);
//! * strings round-trip through the standard JSON escapes (`\"`, `\\`,
//!   `\n`, `\t`, `\r`, `\uXXXX`).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Key-value pairs in insertion order (stable exports).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index into arrays; `None` for other variants or out of range.
    pub fn idx(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Object keys as a sorted map view (for order-insensitive comparison).
    pub fn as_map(&self) -> Option<BTreeMap<&str, &Value>> {
        match self {
            Value::Object(pairs) => Some(pairs.iter().map(|(k, v)| (k.as_str(), v)).collect()),
            _ => None,
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(v as f64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(v as f64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Number(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Build an object in insertion order: `object([("a", 1.0.into()), ...])`.
pub fn object(pairs: impl IntoIterator<Item = (impl Into<String>, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

/// Parse or structure error, with the byte offset where parsing stopped.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    pub msg: String,
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize compactly (no whitespace).
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Serialize with two-space indentation.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                write_break(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !pairs.is_empty() {
                write_break(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; exporters must never feed one, but if a
        // counter ratio divides by zero we keep the document well-formed.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Trailing whitespace is allowed; trailing content
/// is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for src in ["null", "true", "false", "0", "-3", "1.5", "1e3", "\"hi\""] {
            let v = from_str(src).unwrap();
            assert_eq!(from_str(&to_string(&v)).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        assert_eq!(to_string(&Value::Number(36000000000.0)), "36000000000");
        assert_eq!(to_string(&Value::Number(1.25)), "1.25");
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = object([
            ("name", Value::from("conv 128x128")),
            ("gflops", Value::from(371.5)),
            ("levels", Value::from(vec![1.0, 2.0, 3.0])),
            (
                "nested",
                object([("ok", Value::from(true)), ("n", Value::Null)]),
            ),
        ]);
        let compact = to_string(&doc);
        let pretty = to_string_pretty(&doc);
        assert_eq!(from_str(&compact).unwrap(), doc);
        assert_eq!(from_str(&pretty).unwrap(), doc);
        assert!(pretty.contains("\n  \"name\""));
    }

    #[test]
    fn object_preserves_insertion_order() {
        let doc = object([("z", Value::from(1u64)), ("a", Value::from(2u64))]);
        assert_eq!(to_string(&doc), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\rcr\u{1}";
        let v = Value::String(s.to_string());
        assert_eq!(from_str(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let doc = from_str(r#"{"a": [1, {"b": "x"}], "ok": true}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().idx(0).unwrap().as_u64(), Some(1));
        assert_eq!(
            doc.get("a")
                .unwrap()
                .idx(1)
                .unwrap()
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("missing"), None);
        assert!(doc.as_map().unwrap().contains_key("ok"));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = from_str("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("12 34").unwrap_err().msg.contains("trailing"));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = from_str(" \n\t{ \"a\" : [ 1 , 2 ] } \r\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }
}
