//! Offline stand-in for `parking_lot`: a `Mutex` over `std::sync::Mutex`
//! with parking_lot's poison-free `lock()` signature.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutex whose `lock` never returns a poison error (a poisoned lock is
/// recovered, matching parking_lot's behavior of not tracking poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
