//! Offline stand-in for `proptest`, implementing the subset of its API
//! this workspace's property tests use: the `proptest!` macro with
//! `#![proptest_config(...)]`, integer/float range strategies, tuples,
//! `prop_map`, `Just`, `prop_oneof!`, `prop::collection::vec`,
//! `prop::sample::select`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate: generation is driven by a per-test
//! deterministic splitmix64 stream (seeded from the test's name), and
//! there is **no shrinking** — a failing case reports its case index and
//! message instead of a minimized input. Rejections (`prop_assume!`) skip
//! the case without counting it, up to a bounded rejection budget.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! `prop::collection` — sized collections of another strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! `prop::sample` — choosing among explicit options.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing one of the given options, uniformly.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

/// The `prop::` paths (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`: fail the
/// current case (returns `Err(TestCaseError::Fail)` from the case body).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)`: fail the case when `a != b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($a),
                    stringify!($b),
                    lhs,
                    rhs
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// `prop_assume!(cond)`: reject (skip) the case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// `prop_oneof![s1, s2, ...]`: draw from one of several strategies (all
/// producing the same value type), chosen uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::arm($arm)),+])
    };
}

/// The `proptest!` test-harness macro: each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let strat = ($($strat,)+);
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut ran: u32 = 0;
                let mut rejected: u32 = 0;
                while ran < cfg.cases {
                    let ($($pat,)+) = $crate::strategy::Strategy::generate(&strat, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            if rejected > cfg.cases.saturating_mul(64).saturating_add(256) {
                                panic!(
                                    "proptest `{}`: too many rejected cases (last: {})",
                                    stringify!($name),
                                    why
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {} (of {}): {}",
                                stringify!($name),
                                ran,
                                cfg.cases,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even() -> impl Strategy<Value = usize> {
        (1usize..100).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_are_in_bounds(a in 3usize..17, b in -4i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-4..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
        }

        #[test]
        fn prop_map_and_tuples_compose((x, y) in (even(), 0u64..10)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(y < 10);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_vec_and_select(v in prop::collection::vec(prop_oneof![Just(1usize), Just(2usize)], 1..20),
                                pick in prop::sample::select(vec![10usize, 20, 30])) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
            prop_assert!(pick % 10 == 0);
        }

        #[test]
        fn question_mark_propagates_failures(n in 1usize..50) {
            let parsed: usize = n.to_string().parse()
                .map_err(|e: std::num::ParseIntError| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(parsed, n);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let s = (1usize..100, 0u64..1000);
        let mut a = crate::test_runner::TestRng::for_test("fixed-name");
        let mut b = crate::test_runner::TestRng::for_test("fixed-name");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            fn inner(n in 0usize..10) {
                prop_assert!(n > 100, "n = {n} is never > 100");
            }
        }
        inner();
    }
}
