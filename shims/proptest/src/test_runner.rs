//! Deterministic RNG, per-test configuration, and case-level errors.

/// splitmix64 step: the statistical core of the shim's generation stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generation stream. Seeded from the test's name so every
/// `cargo test` run replays the identical case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        splitmix64(&mut state);
        TestRng { state }
    }

    /// Seed from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform draw from `0..n`. `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration; only `cases` is meaningful to the shim, the
/// other fields exist so `..ProptestConfig::default()` spreads work.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must run.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's assertions failed — the whole test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!` — skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    pub fn fail<M: std::fmt::Display>(msg: M) -> Self {
        TestCaseError::Fail(msg.to_string())
    }

    pub fn reject<M: std::fmt::Display>(msg: M) -> Self {
        TestCaseError::Reject(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_name_sensitive() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_f64_stays_in_half_open_interval() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
