//! The `Strategy` trait and the combinators this workspace's tests use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing values of `Value` from a deterministic RNG.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// returns the value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)` — apply `f` to every generated value.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A boxed generator closure: one arm of a [`Union`].
pub type ArmFn<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice among several strategies with a common value type;
/// built by the `prop_oneof!` macro.
pub struct Union<V> {
    arms: Vec<ArmFn<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<ArmFn<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.arms.len());
        (self.arms[pick])(rng)
    }
}

/// Box one strategy into a `Union` arm. A named helper (rather than an
/// inline closure-to-trait-object coercion in the macro) so type inference
/// unifies every arm's `Value` through the `Vec` element type.
pub fn arm<S>(strategy: S) -> ArmFn<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(move |rng| strategy.generate(rng))
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (*self.start() as i128 + off as i128) as $t
                }
            }
        )+
    };
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_cover_bounds_without_escaping() {
        let mut rng = TestRng::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = (3usize..6).generate(&mut rng);
            assert!((3..6).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
            let w = (-2i32..=2).generate(&mut rng);
            assert!((-2..=2).contains(&w));
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn union_draws_every_arm() {
        let u = Union::new(vec![
            arm(Just(1usize)),
            arm(Just(2usize)),
            arm(Just(3usize)),
        ]);
        let mut rng = TestRng::new(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.generate(&mut rng) - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
