//! Offline stand-in for `rand` 0.8, exposing the subset this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range}`, and
//! `distributions::{Distribution, Uniform}`.
//!
//! The generator is splitmix64 — different output stream than the real
//! `StdRng` (ChaCha12), but every consumer in this workspace only relies
//! on seeded determinism and rough uniformity, never on a specific stream.

use std::ops::Range;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn u64_to_unit_f64(x: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding, matching the rand 0.8 entry point this workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic seeded generator (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Decorrelate nearby seeds before the first output.
            let mut state = seed ^ 0xA076_1D64_78BD_642F;
            let _ = splitmix64(&mut state);
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u64_to_unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + u64_to_unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        u64_to_unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    use super::{u64_to_unit_f64, RngCore, SampleRange};
    use std::ops::Range;

    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<X> {
        low: X,
        high: X,
    }

    impl<X: Copy> Uniform<X> {
        pub fn new(low: X, high: X) -> Self {
            Uniform { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + u64_to_unit_f64(rng.next_u64()) * (self.high - self.low)
        }
    }

    macro_rules! int_uniform {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    Range { start: self.low, end: self.high }.sample_single(rng)
                }
            }
        )*};
    }

    int_uniform!(usize, u8, u16, u32, u64, i8, i16, i32, i64);
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.05..0.05);
            assert!((-0.05..0.05).contains(&f));
            let i = rng.gen_range(-4i32..5);
            assert!((-4..5).contains(&i));
        }
    }

    #[test]
    fn uniform_distribution_covers_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = Uniform::new(-4i32, 5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let v = d.sample(&mut rng);
            assert!((-4..5).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 9, "all 9 values should appear in 500 draws");
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            acc += f;
        }
        assert!((acc / 1000.0 - 0.5).abs() < 0.05, "mean far from 0.5");
    }
}
