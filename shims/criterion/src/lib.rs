//! Offline stand-in for `criterion`: times each benchmark over
//! `sample_size` samples and prints min/mean per iteration. No statistics
//! engine, no HTML reports — just enough to keep `cargo bench` (and
//! `cargo test --benches`) compiling and producing usable numbers offline.

use std::time::Instant;

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed_ns: 0.0,
        };
        // Warm-up pass, then the measured samples.
        f(&mut b);
        b.iters = 0;
        b.elapsed_ns = 0.0;
        let mut min_ns = f64::INFINITY;
        for _ in 0..self.sample_size {
            let before = (b.iters, b.elapsed_ns);
            f(&mut b);
            let iters = b.iters - before.0;
            let ns = b.elapsed_ns - before.1;
            if iters > 0 {
                min_ns = min_ns.min(ns / iters as f64);
            }
        }
        let mean_ns = if b.iters > 0 {
            b.elapsed_ns / b.iters as f64
        } else {
            0.0
        };
        println!(
            "bench: {name:<48} mean {:>12.1} ns/iter  min {:>12.1} ns/iter",
            mean_ns, min_ns
        );
        self
    }
}

pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Time `f`, auto-scaling the iteration count toward ~5 ms per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64;
            if ns >= 1_000_000.0 || n >= 1 << 20 {
                self.iters += n;
                self.elapsed_ns += ns;
                return;
            }
            n *= 4;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default().sample_size(2);
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }
}
