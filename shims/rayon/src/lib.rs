//! Offline stand-in for `rayon`, now a thin façade over [`sw_runtime`]:
//! the persistent worker pool executes every parallel region, and the
//! adapters (`map`/`enumerate`) are *lazy* — they compose into a single
//! index-aware closure applied in one parallel pass at the terminal
//! `collect`/`for_each`.
//!
//! The build environment has no network access and no vendored registry,
//! so external crates are replaced by API-compatible local shims (see
//! CONTRIBUTING.md "Offline builds"). Semantics match rayon where it
//! matters to the simulator: closures run on multiple OS threads (so
//! determinism bugs that depend on scheduling still surface), results are
//! returned in input order, and panics propagate to the caller.
//!
//! Earlier versions materialized a fresh `Vec` per adapter —
//! `.map(f).enumerate().collect()` rebuilt the vector once per stage.
//! Every adapter here is 1:1 and order-preserving, so the source index
//! *is* the stream index; `enumerate` therefore needs no materialization,
//! just the index the composed closure already receives.

use sw_runtime::global;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Run `f` with every `par_*` call on this thread using exactly `limit`
/// worker lanes (still capped by the item count). Delegates to
/// [`sw_runtime::with_threads`], which owns the thread-count policy for
/// the whole workspace.
pub fn with_max_threads<R>(limit: usize, f: impl FnOnce() -> R) -> R {
    sw_runtime::with_threads(limit, f)
}

/// A lazy "parallel iterator": a source plus the composed `(index, item)`
/// closure every adapter folded into. Nothing runs until the terminal
/// `collect`/`for_each` makes one parallel pass over the source.
pub struct ParIter<S, T, F: Fn(usize, S) -> T> {
    src: Vec<S>,
    f: F,
}

/// Marker trait mirroring rayon's; all adapters live on the concrete type.
pub trait ParallelIterator {}
impl<S, T, F: Fn(usize, S) -> T> ParallelIterator for ParIter<S, T, F> {}

/// The identity stage sources start from (a nameable `fn` type, so trait
/// methods can state their return type).
fn identity<S>(_: usize, s: S) -> S {
    s
}

/// The `ParIter` type sources produce: identity stage over `S`.
pub type SourceIter<S> = ParIter<S, S, fn(usize, S) -> S>;

fn source<S>(src: Vec<S>) -> SourceIter<S> {
    ParIter {
        src,
        f: identity::<S>,
    }
}

impl<S, T, F> ParIter<S, T, F>
where
    S: Send,
    T: Send,
    F: Fn(usize, S) -> T + Sync,
{
    pub fn map<U, G>(self, g: G) -> ParIter<S, U, impl Fn(usize, S) -> U>
    where
        U: Send,
        G: Fn(T) -> U + Sync,
    {
        let f = self.f;
        ParIter {
            src: self.src,
            f: move |i, s| g(f(i, s)),
        }
    }

    /// Every stage is 1:1 and order-preserving, so the stream position
    /// equals the source index the composed closure already receives —
    /// enumeration costs nothing.
    #[allow(clippy::type_complexity)] // `impl Trait` cannot live in a type alias on stable
    pub fn enumerate(self) -> ParIter<S, (usize, T), impl Fn(usize, S) -> (usize, T)> {
        let f = self.f;
        ParIter {
            src: self.src,
            f: move |i, s| (i, f(i, s)),
        }
    }

    pub fn for_each<G>(self, g: G)
    where
        G: Fn(T) + Sync,
    {
        let f = self.f;
        global().map_vec(self.src, move |i, s| g(f(i, s)));
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        global().map_vec(self.src, self.f).into_iter().collect()
    }
}

pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> SourceIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> SourceIter<usize> {
        source(self.collect())
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> SourceIter<T> {
        source(self)
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> SourceIter<&T>;
    fn par_chunks(&self, size: usize) -> SourceIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SourceIter<&T> {
        source(self.iter().collect())
    }

    fn par_chunks(&self, size: usize) -> SourceIter<&[T]> {
        assert!(size > 0, "chunk size must be positive");
        source(self.chunks(size).collect())
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> SourceIter<&mut T>;
    fn par_chunks_mut(&mut self, size: usize) -> SourceIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SourceIter<&mut T> {
        source(self.iter_mut().collect())
    }

    fn par_chunks_mut(&mut self, size: usize) -> SourceIter<&mut [T]> {
        assert!(size > 0, "chunk size must be positive");
        source(self.chunks_mut(size).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1u64; 64];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn chunks_mut_enumerate_sees_disjoint_chunks() {
        let mut v = vec![0usize; 40];
        v.par_chunks_mut(10).enumerate().for_each(|(row, c)| {
            for x in c.iter_mut() {
                *x = row;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[15], 1);
        assert_eq!(v[39], 3);
    }

    #[test]
    fn adapters_compose_into_a_single_pass() {
        // Regression: eager adapters applied `map` immediately and then
        // rebuilt the Vec once per `enumerate`/`collect`. Lazy composition
        // must invoke each stage exactly once per item, in one pass.
        let calls = AtomicUsize::new(0);
        let v: Vec<(usize, usize)> = (0..100)
            .into_par_iter()
            .map(|i| {
                calls.fetch_add(1, Ordering::Relaxed);
                i + 1
            })
            .enumerate()
            .collect();
        assert_eq!(calls.into_inner(), 100, "one map call per item");
        assert_eq!(v[41], (41, 42));
    }

    #[test]
    fn enumerate_before_map_sees_source_indices() {
        let v: Vec<usize> = vec![10usize, 20, 30]
            .into_par_iter()
            .enumerate()
            .map(|(i, x)| x + i)
            .collect();
        assert_eq!(v, vec![10, 21, 32]);
    }

    #[test]
    fn with_max_threads_overrides_and_restores() {
        let v: Vec<usize> =
            crate::with_max_threads(4, || (0..100usize).into_par_iter().map(|i| i + 1).collect());
        assert_eq!(v, (1..=100).collect::<Vec<_>>());
        // Restored after the scope (including across panics via Drop);
        // nesting replaces rather than narrows, exactly as before the
        // sw-runtime delegation.
        assert!(sw_runtime::current_override().is_none());
        let nested = crate::with_max_threads(1, || {
            crate::with_max_threads(2, sw_runtime::current_override)
        });
        assert_eq!(nested, Some(2));
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        crate::with_max_threads(4, || {
            (0..64usize)
                .into_par_iter()
                .map(|i| if i == 13 { panic!("boom") } else { i })
                .collect::<Vec<_>>()
        });
    }
}
