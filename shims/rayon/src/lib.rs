//! Offline stand-in for `rayon`, exposing exactly the surface this
//! workspace uses: `par_iter`/`par_iter_mut` on slices, `into_par_iter` on
//! `Range<usize>`, `par_chunks_mut`, and the `map`/`enumerate`/`for_each`/
//! `collect` adapters.
//!
//! The build environment has no network access and no vendored registry,
//! so external crates are replaced by API-compatible local shims (see
//! CONTRIBUTING.md "Offline builds"). Semantics match rayon where it
//! matters to the simulator: closures run on multiple OS threads (so
//! determinism bugs that depend on scheduling still surface), results are
//! returned in input order, and panics propagate to the caller.
//!
//! Adapters are eager rather than lazy: `.map(f)` applies `f` in parallel
//! immediately and later adapters reshape the materialized results. Every
//! pipeline in this workspace ends in `collect`/`for_each`, so eager
//! evaluation is observationally equivalent.

use std::cell::Cell;
use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

thread_local! {
    static MAX_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Run `f` with every `par_*` call on this thread using exactly `limit`
/// worker threads (still capped by the item count), overriding the
/// machine's `available_parallelism`. Determinism tests use this to pin
/// the fan-out to 1, 4, … and assert identical simulation results; note
/// that unlike a plain cap it *raises* the thread count on single-core
/// hosts, so the schedules being compared are genuinely different.
pub fn with_max_threads<R>(limit: usize, f: impl FnOnce() -> R) -> R {
    assert!(limit > 0, "thread limit must be positive");
    let prev = MAX_THREADS.with(|m| m.replace(Some(limit)));
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            MAX_THREADS.with(|m| m.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// A materialized "parallel iterator": adapters consume and rebuild it.
pub struct ParIter<I> {
    items: Vec<I>,
}

/// Marker trait mirroring rayon's; all adapters live on the concrete type.
pub trait ParallelIterator {}
impl<I> ParallelIterator for ParIter<I> {}

impl<I: Send> ParIter<I> {
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParIter {
            items: par_map(self.items, f),
        }
    }

    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        par_map(self.items, f);
    }

    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Apply `f` to every item on a pool of scoped threads, preserving order.
fn par_map<I, R, F>(mut items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let avail = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let threads = MAX_THREADS.with(|m| m.get()).unwrap_or(avail).min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    while !items.is_empty() {
        let rest = items.split_off(chunk.min(items.len()));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            // Propagate worker panics like rayon does.
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(size).collect(),
        }
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        assert!(size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1u64; 64];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn chunks_mut_enumerate_sees_disjoint_chunks() {
        let mut v = vec![0usize; 40];
        v.par_chunks_mut(10).enumerate().for_each(|(row, c)| {
            for x in c.iter_mut() {
                *x = row;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[15], 1);
        assert_eq!(v[39], 3);
    }

    #[test]
    fn with_max_threads_overrides_and_restores() {
        let v: Vec<usize> =
            crate::with_max_threads(4, || (0..100usize).into_par_iter().map(|i| i + 1).collect());
        assert_eq!(v, (1..=100).collect::<Vec<_>>());
        // Restored after the scope (including across panics via Drop).
        assert!(super::MAX_THREADS.with(|m| m.get()).is_none());
        let nested = crate::with_max_threads(1, || {
            crate::with_max_threads(2, || super::MAX_THREADS.with(|m| m.get()))
        });
        assert_eq!(nested, Some(2));
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        (0..64usize)
            .into_par_iter()
            .map(|i| if i == 13 { panic!("boom") } else { i })
            .collect::<Vec<_>>();
    }
}
