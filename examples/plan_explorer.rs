//! Plan explorer: interrogate the performance model the way §III-D uses it
//! — for a configuration of your choosing, enumerate the candidate plans,
//! their required bandwidths, LDM footprints, and predictions, then run
//! the winner on the simulator to see how well the model did.
//!
//! ```sh
//! cargo run --release --example plan_explorer -- [Ni] [No] [batch] [K]
//! cargo run --release --example plan_explorer -- 256 128 128 5
//! ```

use sw_perfmodel::select::{ldm_doubles_batch_aware, ldm_doubles_image_aware, Blocking};
use sw_perfmodel::{rbw, select_plan, ChipSpec, ConvPerfModel, PlanKind};
use swdnn::{ConvShape, Executor};

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (ni, no, batch, k) = (arg(1, 128), arg(2, 128), arg(3, 128), arg(4, 3));
    let shape = ConvShape::new(batch, ni, no, 64, 64, k, k);
    let chip = ChipSpec::sw26010();
    let model = ConvPerfModel::default();
    println!("configuration: {shape}");
    println!(
        "LDM budget: {} doubles/CPE; CG peak {:.1} Gflops\n",
        chip.ldm_doubles(),
        chip.peak_gflops_per_cg()
    );

    // Batch-size-aware candidate.
    let batch_ldm = ldm_doubles_batch_aware(&shape);
    let batch_est = model.estimate(
        PlanKind::BatchSizeAware,
        Blocking::default(),
        batch,
        ni,
        no,
        k,
    );
    println!(
        "batch-size-aware   : RBW {:6.1} GB/s (Eq.2)  LDM {:>5} {}  model {:6.1} Gflops",
        rbw::rbw_batch_aware(batch, k, no, chip.peak_gflops_per_cg()),
        batch_ldm,
        if batch_ldm <= chip.ldm_doubles() {
            "ok      "
        } else {
            "OVERFLOW"
        },
        batch_est.gflops_per_cg
    );

    // Image-size-aware candidates.
    println!("image-size-aware candidates:");
    for b_b in [32usize, 64, 128] {
        if batch % b_b != 0 {
            continue;
        }
        for b_co in [4usize, 8, 16, 32] {
            if !shape.co.is_multiple_of(b_co) {
                continue;
            }
            let blk = Blocking { b_b, b_co };
            let ldm = ldm_doubles_image_aware(&shape, blk);
            let est = model.estimate(PlanKind::ImageSizeAware, blk, batch, ni, no, k);
            println!(
                "  bB={b_b:<3} bCo={b_co:<2}: RBW {:6.1} GB/s (Eq.1)  LDM {:>5} {}  model {:6.1} Gflops",
                est.rbw_mem_ldm,
                ldm,
                if ldm <= chip.ldm_doubles() { "ok      " } else { "OVERFLOW" },
                est.gflops_per_cg
            );
        }
    }

    match select_plan(&shape, &chip) {
        Some(choice) => {
            println!(
                "\nmodel selects: {:?} with blocking {:?} ({} LDM doubles, predicted {:.1} Gflops)",
                choice.kind, choice.blocking, choice.ldm_doubles, choice.estimate.gflops_per_cg
            );
        }
        None => println!("\nmodel selects: none (shape needs Ni/No blocking)"),
    }

    // Run the winner on the simulator.
    let rep = Executor::new().run_config(&shape)?;
    println!(
        "simulated ({}): {:.1} Gflops/CG = {:.1}% of peak (model said {:.1})",
        rep.plan_name,
        rep.gflops_cg,
        100.0 * rep.efficiency,
        rep.model.gflops_per_cg
    );
    println!(
        "traffic: {:.1} MB get / {:.1} MB put; minimum possible {:.1} MB",
        rep.timing.stats.totals.dma_get_bytes as f64 / 1e6,
        rep.timing.stats.totals.dma_put_bytes as f64 / 1e6,
        shape.min_bytes_f64() as f64 / 1e6
    );
    println!("ok.");
    Ok(())
}
