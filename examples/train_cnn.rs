//! Train a small CNN classifier end-to-end — the paper's motivating
//! workload ("especially focused on the training part") — with the
//! convolution layer running on the simulated SW26010.
//!
//! The task is a synthetic 4-class problem: each 12×12 image contains a
//! bright quadrant; the network must say which. Small enough to train in
//! seconds, structured enough that a conv + pool + fc stack is the right
//! tool.
//!
//! ```sh
//! cargo run --release --example train_cnn
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swdnn::layers::{Conv2dLayer, Engine, Linear, MaxPool2, ReLU};
use swdnn::network::Sequential;
use swdnn::{ConvShape, Layout, Tensor4};

const BATCH: usize = 32;
const CLASSES: usize = 4;

/// Images with one bright quadrant; label = quadrant index.
fn make_batch(seed: u64) -> (Tensor4<f64>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = sw_tensor::Shape4::new(BATCH, 1, 12, 12);
    let mut x = Tensor4::zeros(s, Layout::Nchw);
    let mut y = Vec::with_capacity(BATCH);
    for b in 0..BATCH {
        let class = rng.gen_range(0..CLASSES);
        let (r0, c0) = ((class / 2) * 6, (class % 2) * 6);
        for r in 0..12 {
            for c in 0..12 {
                let inside = (r0..r0 + 6).contains(&r) && (c0..c0 + 6).contains(&c);
                let v = if inside { 1.0 } else { 0.1 } + rng.gen_range(-0.05..0.05);
                x.set(b, 0, r, c, v);
            }
        }
        y.push(class);
    }
    (x, y)
}

fn build(engine: Engine) -> Sequential {
    // 1x12x12 -> conv(8ch, 3x3) -> 8x10x10 -> relu -> pool -> 8x5x5... 5 is
    // odd for pooling; use 4x4 output via a second conv instead:
    // conv1: 1 -> 8, out 10x10; relu; pool -> 8x5x5 is odd, so conv to 8x8:
    let conv1 =
        Conv2dLayer::new(ConvShape::new(BATCH, 1, 8, 10, 10, 3, 3), engine, 1).expect("conv1");
    let conv2 =
        Conv2dLayer::new(ConvShape::new(BATCH, 8, 8, 8, 8, 3, 3), engine, 2).expect("conv2");
    Sequential::new(vec![
        Box::new(conv1),
        Box::new(ReLU::new()),
        Box::new(conv2),
        Box::new(ReLU::new()),
        Box::new(MaxPool2::new()),
        Box::new(Linear::new(8 * 4 * 4, CLASSES, 3)),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Host engine for training speed; the simulated engine is exercised on
    // one batch at the end to show the acceleration path.
    let mut net = build(Engine::Host);
    println!("network: conv(1->8,3x3) relu conv(8->8,3x3) relu maxpool fc({CLASSES})");
    println!("trainable parameters: {}", net.param_count());

    let lr = 0.05;
    let epochs = 40;
    for epoch in 0..epochs {
        let mut loss_sum = 0.0;
        for step in 0..4 {
            let (x, y) = make_batch(1000 + (epoch * 4 + step) as u64 % 16);
            loss_sum += net.train_step(&x, &y, lr)?;
        }
        if epoch % 8 == 0 || epoch == epochs - 1 {
            let (xv, yv) = make_batch(99);
            let acc = net.accuracy(&xv, &yv)?;
            println!(
                "epoch {epoch:2}: loss {:.4}, held-out accuracy {:.0}%",
                loss_sum / 4.0,
                acc * 100.0
            );
        }
    }
    let (xt, yt) = make_batch(123);
    let acc = net.accuracy(&xt, &yt)?;
    println!("final held-out accuracy: {:.0}%", acc * 100.0);
    assert!(acc > 0.9, "the synthetic task should be learned");

    // One forward pass with the convolutions on the simulated SW26010.
    println!("\nrunning one batch with convolutions on the simulated chip...");
    let mut sim_net = build(Engine::Simulated);
    let (x, y) = make_batch(7);
    let loss = sim_net.train_step(&x, &y, lr)?;
    println!("simulated-engine training step complete (loss {loss:.4}).");
    println!("ok.");
    Ok(())
}
