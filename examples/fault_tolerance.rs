//! Fault tolerance: run convolutions on a *faulty* simulated SW26010 and
//! watch the resilient executor recover — retries for transient DMA
//! faults, plan fallback, and degraded-mesh execution around a dead CPE.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use sw_tensor::init::seeded_tensor;
use swdnn::{ConvShape, FaultPlan, Layout, ResilientExecutor, SwdnnError, VerifyPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = ConvShape::new(32, 16, 16, 8, 8, 3, 3);
    let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 1);
    let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 2);
    println!("convolution: {shape}\n");

    // 1. Fault-free baseline.
    let clean = ResilientExecutor::new().run(&shape, &input, &filter)?;
    println!(
        "clean:     plan={} cycles={} attempts={}",
        clean.plan_name, clean.run.timing.cycles, clean.attempts
    );

    // 2. Transient DMA faults: retried with backoff charged into the
    //    timing model; the output stays bit-for-bit identical.
    let faulty = ResilientExecutor::new()
        .with_fault(Some(FaultPlan::none(11).with_dma_fail_rate(5e-3)))
        .with_verification(VerifyPolicy::SpotCheck {
            samples: 16,
            tol: 1e-10,
        })
        .run(&shape, &input, &filter)?;
    println!(
        "dma 5e-3:  plan={} cycles={} dma_retries={} retry_cycles={} drift={:.1e}",
        faulty.plan_name,
        faulty.run.timing.cycles,
        faulty.dma_retries,
        faulty.retry_cycles,
        faulty.run.output.max_abs_diff(&clean.run.output)
    );

    // 3. A dead CPE at (2, 3): the executor masks the faulty row/column
    //    and re-plans on a degraded 4x4 mesh.
    let dead = ResilientExecutor::new()
        .with_fault(Some(FaultPlan::none(7).with_dead_cpe(2, 3)))
        .run(&shape, &input, &filter)?;
    println!(
        "dead CPE:  plan={} degraded={} drift={:.1e}",
        dead.plan_name,
        dead.degraded,
        dead.run.output.max_abs_diff(&clean.run.output)
    );
    for note in &dead.fallbacks {
        println!("           fallback: {note}");
    }

    // 4. Unrecoverable: every DMA transfer fails and fallback is disabled,
    //    so the executor surfaces FaultExhausted instead of looping.
    let doomed = ResilientExecutor::new()
        .with_fault(Some(FaultPlan::none(3).with_dma_fail_rate(1.0)))
        .with_max_retries(2)
        .with_fallback(false)
        .run(&shape, &input, &filter);
    match doomed {
        Err(e @ SwdnnError::FaultExhausted { .. }) => println!("rate 1.0:  {e}"),
        other => println!("rate 1.0:  unexpected: {other:?}"),
    }

    Ok(())
}
