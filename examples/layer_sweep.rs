//! Layer sweep: time the convolution layers of a VGG-like network on the
//! simulated SW26010, the workload class the paper's introduction
//! motivates (ImageNet-scale CNNs with growing depth).
//!
//! Per layer: the selected plan, simulated throughput, efficiency, and the
//! analytic model's prediction — a miniature of the paper's evaluation
//! methodology applied to a real network architecture.
//!
//! ```sh
//! cargo run --release --example layer_sweep
//! ```

use swdnn::zoo::vgg_like_conv_stack;
use swdnn::{ChipSpec, Executor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Conv layers of a VGG-ish column at batch 128 (channel counts rounded
    // to the multiples of 32 the paper sweeps; spatial sizes chosen so the
    // mesh plans apply — the paper evaluates 64x64 outputs throughout).
    let layers = vgg_like_conv_stack(128);

    let exec = Executor::new();
    let chip = ChipSpec::sw26010();
    println!(
        "{:<9} {:>22} {:>18} {:>10} {:>7} {:>10} {:>9}",
        "layer", "shape", "plan", "Gflops/CG", "eff%", "model", "ms/chip"
    );
    let mut total_ms = 0.0;
    let mut total_flops = 0u64;
    for (name, shape) in &layers {
        let rep = exec.run_config(shape)?;
        let chip_time_ms =
            shape.flops() as f64 / (rep.gflops_cg * chip.core_groups as f64 * 1e9) * 1e3;
        total_ms += chip_time_ms;
        total_flops += shape.flops();
        println!(
            "{:<9} {:>22} {:>18} {:>10.0} {:>6.1}% {:>10.0} {:>9.2}",
            name,
            format!("{}x{}x{}x{}", shape.ni, shape.no, shape.ro, shape.co),
            rep.plan_name,
            rep.gflops_cg,
            100.0 * rep.efficiency,
            rep.model.gflops_per_cg,
            chip_time_ms
        );
    }
    println!(
        "\nforward conv stack: {:.1} Gflop in {:.1} ms on the 4-CG chip \
         ({:.0} Gflops sustained)",
        total_flops as f64 / 1e9,
        total_ms,
        total_flops as f64 / (total_ms / 1e3) / 1e9
    );
    println!("ok.");
    Ok(())
}
