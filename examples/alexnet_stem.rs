//! General-geometry convolutions: an AlexNet-style front end with strided
//! and padded layers, trained for a few steps — the library-completeness
//! features beyond the paper's dense kernels.
//!
//! ```sh
//! cargo run --release --example alexnet_stem
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sw_tensor::conv_general::ConvGeometry;
use swdnn::layers::{BatchNorm2d, ConvGeneralLayer, Dropout, Linear, MaxPool2, ReLU};
use swdnn::network::Sequential;
use swdnn::optim::Optimizer;
use swdnn::{Shape4, Tensor4};

const BATCH: usize = 8;
const CLASSES: usize = 3;

/// Synthetic 3-class "texture" images at 35x35: vertical stripes,
/// horizontal stripes, or checkerboard.
fn make_batch(seed: u64) -> (Tensor4<f64>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = Shape4::new(BATCH, 1, 35, 35);
    let mut x = Tensor4::zeros(s, swdnn::Layout::Nchw);
    let mut y = Vec::with_capacity(BATCH);
    for b in 0..BATCH {
        let class = rng.gen_range(0..CLASSES);
        for r in 0..35 {
            for c in 0..35 {
                let v = match class {
                    0 => ((c / 3) % 2) as f64,
                    1 => ((r / 3) % 2) as f64,
                    _ => (((r / 3) + (c / 3)) % 2) as f64,
                };
                x.set(b, 0, r, c, v + rng.gen_range(-0.1..0.1));
            }
        }
        y.push(class);
    }
    (x, y)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // AlexNet-flavoured stem scaled to the synthetic task:
    //   conv 7x7 stride 2 (35 -> 15) -> BN -> ReLU
    //   conv 3x3 "same"   (15 -> 15) -> ReLU -> maxpool (15 is odd: crop via valid 2x2 stride... use 3x3 valid -> 13? )
    // Keep extents pool-friendly: second conv valid 3x3 + stride 1: 15->13,
    // then a 2x2 pool needs even extents, so a final valid conv 2x2 -> 12.
    let stem = ConvGeometry::valid(7, 7).with_stride(2, 2); // 35 -> 15
    let mid = ConvGeometry::same(3, 3); // 15 -> 15
    let shrink = ConvGeometry::valid(2, 2).with_stride(1, 1); // 15 -> 14

    let mut net = Sequential::new(vec![
        Box::new(ConvGeneralLayer::new(stem, 1, 8, 1)),
        Box::new(BatchNorm2d::new(8)),
        Box::new(ReLU::new()),
        Box::new(ConvGeneralLayer::new(mid, 8, 8, 2)),
        Box::new(ReLU::new()),
        Box::new(ConvGeneralLayer::new(shrink, 8, 8, 3)),
        Box::new(MaxPool2::new()), // 14 -> 7x7
        Box::new(Dropout::new(0.1, 4)),
        Box::new(Linear::new(8 * 7 * 7, CLASSES, 5)),
    ]);
    println!(
        "stem: conv7x7/s2 + BN + conv3x3(same) + conv2x2 + pool + dropout + fc ({} params)",
        net.param_count()
    );

    let mut opt = Optimizer::adam(0.01);
    for epoch in 0..12 {
        let mut loss = 0.0;
        for step in 0..4 {
            let (x, y) = make_batch(100 + (epoch * 4 + step) as u64 % 8);
            loss += net.train_step_opt(&x, &y, &mut opt)?;
        }
        if epoch % 3 == 0 || epoch == 11 {
            println!("epoch {epoch:2}: mean loss {:.4}", loss / 4.0);
        }
    }
    // Evaluate with dropout off (rebuild is simplest in this demo: set
    // training=false through a fresh forward by replacing the layer is
    // overkill; dropout at p=0.1 barely moves eval accuracy).
    let (xt, yt) = make_batch(999);
    let acc = net.accuracy(&xt, &yt)?;
    println!("held-out accuracy: {:.0}%", acc * 100.0);
    assert!(acc >= 0.6, "stem should beat chance (33%)");
    println!("ok.");
    Ok(())
}
