//! Quickstart: run one convolution on the simulated SW26010 and inspect
//! what swDNN did with it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use swdnn::{ChipSpec, Conv2d, ConvShape, Layout};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small convolutional layer: batch 32, 16 -> 16 channels, 8x8
    // output, 3x3 filters (small enough to simulate fully in milliseconds).
    let shape = ConvShape::new(32, 16, 16, 8, 8, 3, 3);
    println!("convolution: {shape}");
    println!("flops/pass:  {:.1} M", shape.flops() as f64 / 1e6);

    // Deterministic operands.
    let input = sw_tensor::init::seeded_tensor(shape.input_shape(), Layout::Nchw, 1);
    let filter = sw_tensor::init::xavier_filter(shape.filter_shape(), Layout::Nchw, 2);

    // Let the performance model pick a plan and run it on one core group.
    let conv = Conv2d::new(shape)?;
    let plan = conv.plan();
    println!("selected plan: {}", plan.name());

    let run = conv.forward(&input, &filter)?;
    let chip = ChipSpec::sw26010();
    println!(
        "simulated: {} cycles = {:.2} us on one CG",
        run.timing.cycles,
        run.timing.cycles as f64 / (chip.clock_ghz * 1e3)
    );
    println!(
        "throughput: {:.1} Gflops ({:.1}% of the CG's 742.4 Gflops peak)",
        run.timing.gflops(&shape, &chip),
        100.0 * run.timing.efficiency(&shape, &chip)
    );
    let st = run.timing.stats.totals;
    println!(
        "traffic: {:.2} MB DMA get, {:.2} MB DMA put, {} bus vectors",
        st.dma_get_bytes as f64 / 1e6,
        st.dma_put_bytes as f64 / 1e6,
        st.bus_vectors_sent
    );

    // Verify against the naive reference convolution (Listing 1).
    let expect = sw_tensor::conv2d_ref(shape, &input, &filter);
    let diff = run.output.max_abs_diff(&expect);
    println!("max |diff| vs 7-loop reference: {diff:.3e}");
    assert!(diff < 1e-10, "plan must match the reference");

    // The same output, in the swDNN vectorized layout.
    let vectorized = run.output.to_layout(Layout::ImageAware);
    println!(
        "output tensor: {:?} ({} doubles in the (4,C,R,N,B/4) layout)",
        vectorized.shape(),
        vectorized.data().len()
    );
    println!("ok.");
    Ok(())
}
