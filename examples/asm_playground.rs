//! Assembly playground: the §VI instruction-reordering story, end to end.
//!
//! Dumps the naive GEMM inner kernel as text assembly, simulates it on the
//! dual-pipeline model, runs the automatic scheduler, and prints the
//! before/after comparison — the executable version of Fig. 6.
//!
//! ```sh
//! cargo run --release --example asm_playground
//! ```

use sw_isa::efficiency;
use sw_isa::{
    naive_gemm_kernel, parse_program, print_program, reordered_gemm_kernel, DualPipe, KernelSpec,
};

fn main() {
    let n = 2; // two iterations keep the listing readable
    let spec = KernelSpec::new(n);
    let pipe = DualPipe::default();

    let naive = naive_gemm_kernel(spec);
    println!("=== naive inner kernel ({n} iterations), as the compiler emits it ===");
    print!("{}", print_program(&naive, false));
    let rep = pipe.run(&naive);
    println!(
        "--> {} cycles ({:.2}/iter), {} dual-issues, {} stalls\n",
        rep.cycles,
        rep.cycles as f64 / n as f64,
        rep.dual_issues,
        rep.stall_cycles
    );

    let reordered = reordered_gemm_kernel(spec);
    println!("=== hand schedule of Fig. 6 (software-pipelined, ping-pong registers) ===");
    let rep2 = pipe.run(&reordered);
    print!("{}", rep2.annotate(&reordered));
    println!(
        "--> {} cycles ({:.2}/iter), {} dual-issues, {} stalls",
        rep2.cycles,
        rep2.cycles as f64 / n as f64,
        rep2.dual_issues,
        rep2.stall_cycles
    );
    println!(
        "speedup {:.2}x; steady-state EE {:.1}% -> {:.1}%\n",
        rep.cycles as f64 / rep2.cycles as f64,
        100.0 * efficiency::ee_naive(n),
        100.0 * efficiency::ee_reordered(n),
    );

    // Round-trip through the text format.
    let text = print_program(&reordered, true);
    let parsed = parse_program(&text).expect("asm must round-trip");
    assert_eq!(parsed, reordered);
    println!(
        "asm round-trip: {} instructions parsed back identically.",
        parsed.len()
    );

    // The scaling story the paper tells: EE rises with Ni.
    println!("\nNi   cycles(naive)  cycles(reordered)  EE");
    for ni in [64usize, 128, 256, 384] {
        let n = efficiency::iterations_for_ni(ni);
        let c1 = pipe.run(&naive_gemm_kernel(KernelSpec::new(n))).cycles;
        let c2 = pipe.run(&reordered_gemm_kernel(KernelSpec::new(n))).cycles;
        println!(
            "{ni:<4} {c1:>13}  {c2:>17}  {:.1}%",
            100.0 * efficiency::ee_reordered(n)
        );
    }
}
